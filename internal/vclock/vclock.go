// Package vclock implements the discrete-event virtual clock that the
// experiment harness runs the testbed under.
//
// The reproduction models every delay — link latencies, thread wakeups,
// CPU occupancy — as a wait. Executing those waits in real time couples
// the model to the machine running it: on a small machine the monitor's
// real bookkeeping work stretches the application's modelled delays,
// polluting exactly the overhead percentages the paper measures. Under
// the virtual clock, waits suspend goroutines logically; when every
// registered goroutine is blocked (in a virtual sleep or on a
// clock-aware synchronization primitive), the clock jumps to the next
// deadline. Modelled time then depends only on the model, never on how
// fast the host executes it, and runs complete as fast as the events can
// be processed. Timing is exact; ties between events at the same virtual
// instant (e.g. two goroutines racing for a CPU slot) may resolve in
// either order, as they would on real hardware.
//
// The clock is conservative: it needs to know about every goroutine that
// participates in the model and about every blocking point. Participants
// are spawned with Go (or bracketed with Register/Unregister); blocking
// synchronization uses the clock-aware Cond, Sem, WaitGroup, Event and
// Queue primitives, which behave like their sync counterparts when the
// clock is disabled. A registered goroutine must never block on a plain
// channel or sync primitive while the clock is active — the clock would
// consider it runnable and stall (ErrStalled panics flag the inverse
// case, where everyone is blocked but no timer is pending).
package vclock

import (
	"fmt"
	"sync"
	"time"
)

var _ = fmt.Sprintf // retained for diagnostics in tests

// clock is the process-global virtual clock. A singleton keeps the
// instrumentation burden on callers low (mirroring package hrtime).
type clock struct {
	mu      sync.Mutex
	active  bool
	now     int64 // virtual nanoseconds
	running int   // registered goroutines currently runnable
	live    int   // registered goroutines alive (runnable or blocked)
	timers  timerHeap
}

var c clock

type timer struct {
	when    int64
	ch      chan struct{}
	outside bool // sleeper is not a registered goroutine (SleepOutside)
}

// timerHeap is a minimal binary min-heap of timers ordered by deadline.
type timerHeap []timer

func (h *timerHeap) push(t timer) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].when <= (*h)[i].when {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *timerHeap) pop() timer {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l].when < (*h)[small].when {
			small = l
		}
		if r < n && (*h)[r].when < (*h)[small].when {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// Enable switches the process to virtual time starting at start
// nanoseconds. It must be called while no registered goroutines exist
// (see Quiesce).
func Enable(start int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.live != 0 || c.running != 0 {
		panic(fmt.Sprintf("vclock: Enable with %d live / %d running goroutines", c.live, c.running))
	}
	c.active = true
	c.now = start
	c.timers = c.timers[:0]
}

// Disable returns the process to real time.
func Disable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.active = false
	// Release any leftover timers so no goroutine hangs forever.
	for len(c.timers) > 0 {
		t := c.timers.pop()
		close(t.ch)
	}
	c.running = 0
	c.live = 0
}

// Active reports whether virtual time is in effect.
func Active() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active
}

// Now returns the current virtual time in nanoseconds (0 when disabled).
func Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// advanceLocked fires due timers or jumps to the next deadline whenever
// nothing is runnable. Caller holds c.mu.
func (c *clock) advanceLocked() {
	for c.active && c.running == 0 && len(c.timers) > 0 {
		next := c.timers[0].when
		if next > c.now {
			c.now = next
		}
		for len(c.timers) > 0 && c.timers[0].when <= c.now {
			t := c.timers.pop()
			if !t.outside {
				c.running++
			}
			close(t.ch)
		}
	}
	// running == 0 with no timers is a legal idle state: every model
	// goroutine is parked on a condition and progress will come from
	// outside the model (an unregistered driver starting the next
	// phase, or a teardown broadcast). Time simply stands still. A true
	// deadlock therefore shows up as a hang, caught by test timeouts;
	// Stats exposes the bookkeeping for diagnosis.
}

// Go runs fn as a registered model goroutine. When the clock is disabled
// it is a plain goroutine.
func Go(fn func()) {
	c.mu.Lock()
	if !c.active {
		c.mu.Unlock()
		go fn()
		return
	}
	c.running++
	c.live++
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.running--
			c.live--
			c.advanceLocked()
			c.mu.Unlock()
		}()
		fn()
	}()
}

// Register marks the calling goroutine as a model participant; it must be
// paired with Unregister. No-ops while the clock is disabled.
func Register() {
	c.mu.Lock()
	if c.active {
		c.running++
		c.live++
	}
	c.mu.Unlock()
}

// Unregister removes the calling goroutine from the model.
func Unregister() {
	c.mu.Lock()
	if c.active {
		c.running--
		c.live--
		c.advanceLocked()
	}
	c.mu.Unlock()
}

// Sleep suspends the calling registered goroutine for d of virtual time.
// It must only be called from registered goroutines while the clock is
// active; it falls through immediately when the clock is disabled (the
// caller is expected to have handled real-time sleeping itself).
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	if !c.active {
		c.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	c.timers.push(timer{when: c.now + int64(d), ch: ch})
	c.running--
	c.advanceLocked()
	c.mu.Unlock()
	<-ch
}

// SleepOutside suspends an unregistered (driver) goroutine until the
// virtual clock reaches now+d. Unlike Sleep it leaves the runnable count
// alone on both ends: the caller was never part of the model, so parking
// it must not let the clock advance past a still-runnable model
// goroutine, and waking it re-adds nothing. The deadline still behaves
// like any other pending wakeup — the timer fires once every registered
// goroutine is blocked and the clock reaches it. Calling plain Sleep
// from an unregistered goroutine instead corrupts the runnable count
// (it decrements a credit it never added), which lets the clock run
// ahead of freshly spawned model goroutines.
func SleepOutside(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	if !c.active {
		c.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	c.timers.push(timer{when: c.now + int64(d), ch: ch, outside: true})
	// The model may already be idle; nobody else would advance then.
	c.advanceLocked()
	c.mu.Unlock()
	<-ch
}

// block marks the caller blocked on an external condition. The waker is
// responsible for re-adding it via addRunning before (or as part of)
// signalling.
func block() {
	c.mu.Lock()
	if c.active {
		c.running--
		c.advanceLocked()
	}
	c.mu.Unlock()
}

// addRunning re-adds n goroutines the caller is about to wake.
func addRunning(n int) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	if c.active {
		c.running += n
	}
	c.mu.Unlock()
}

// Quiesce blocks until every registered goroutine has exited, then
// returns true. It gives up after the timeout (real time).
func Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		live := c.live
		active := c.active
		c.mu.Unlock()
		if live == 0 || !active {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Stats reports the clock's bookkeeping (for tests and diagnostics).
func Stats() (now int64, running, live, timers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now, c.running, c.live, len(c.timers)
}
