package vclock

import (
	"errors"
	"sync"
)

// ErrClosed is returned when pushing to a closed Queue.
var ErrClosed = errors.New("vclock: queue closed")

// Cond is a clock-aware condition variable. Wait, Signal and Broadcast
// must be called with L held; the waker transfers runnability to the
// goroutines it wakes, so the clock never advances past a pending wakeup.
// With the clock disabled it behaves exactly like sync.Cond.
type Cond struct {
	L       sync.Locker
	c       *sync.Cond
	waiters int
}

// NewCond returns a condition variable bound to l.
func NewCond(l sync.Locker) *Cond {
	return &Cond{L: l, c: sync.NewCond(l)}
}

// Wait atomically releases L and suspends the caller until woken.
func (cv *Cond) Wait() {
	cv.waiters++
	block()
	cv.c.Wait()
}

// Signal wakes one waiter.
func (cv *Cond) Signal() {
	if cv.waiters > 0 {
		cv.waiters--
		addRunning(1)
	}
	cv.c.Signal()
}

// Broadcast wakes all waiters.
func (cv *Cond) Broadcast() {
	addRunning(cv.waiters)
	cv.waiters = 0
	cv.c.Broadcast()
}

// Sem is a clock-aware counting semaphore; it replaces the buffered
// channel commonly used for CPU slots.
type Sem struct {
	mu   sync.Mutex
	cond *Cond
	free int
}

// NewSem creates a semaphore with n slots.
func NewSem(n int) *Sem {
	s := &Sem{free: n}
	s.cond = NewCond(&s.mu)
	return s
}

// Acquire claims a slot, blocking until one is free.
func (s *Sem) Acquire() {
	s.mu.Lock()
	for s.free == 0 {
		s.cond.Wait()
	}
	s.free--
	s.mu.Unlock()
}

// Release returns a slot.
func (s *Sem) Release() {
	s.mu.Lock()
	s.free++
	s.cond.Signal()
	s.mu.Unlock()
}

// WaitGroup is a clock-aware sync.WaitGroup replacement for joins inside
// the model (e.g. parallel gather helpers).
type WaitGroup struct {
	mu   sync.Mutex
	cond *Cond
	n    int
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup() *WaitGroup {
	wg := &WaitGroup{}
	wg.cond = NewCond(&wg.mu)
	return wg
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	wg.n += delta
	if wg.n < 0 {
		wg.mu.Unlock()
		panic("vclock: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.cond.Broadcast()
	}
	wg.mu.Unlock()
}

// Done decrements the counter.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait() {
	wg.mu.Lock()
	for wg.n > 0 {
		wg.cond.Wait()
	}
	wg.mu.Unlock()
}

// Event is a clock-aware one-shot: one goroutine waits for a value
// another delivers (a request's reply slot).
type Event struct {
	mu   sync.Mutex
	cond *Cond
	done bool
	val  []byte
	err  error
}

// NewEvent returns an unfired event.
func NewEvent() *Event {
	e := &Event{}
	e.cond = NewCond(&e.mu)
	return e
}

// Fire delivers the value; only the first call wins.
func (e *Event) Fire(val []byte, err error) {
	e.mu.Lock()
	if !e.done {
		e.done = true
		e.val, e.err = val, err
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Wait blocks until the event fires.
func (e *Event) Wait() ([]byte, error) {
	e.mu.Lock()
	for !e.done {
		e.cond.Wait()
	}
	val, err := e.val, e.err
	e.mu.Unlock()
	return val, err
}

// Queue is a clock-aware FIFO with close semantics, used as a
// connection's request queue towards its communication thread.
type Queue[T any] struct {
	mu     sync.Mutex
	cond   *Cond
	items  []T
	closed bool
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	q.cond = NewCond(&q.mu)
	return q
}

// Push appends an item; it fails once the queue is closed.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	q.items = append(q.items, v)
	q.cond.Signal()
	q.mu.Unlock()
	return nil
}

// Pop removes the oldest item, blocking until one is available. It
// returns ok == false as soon as the queue is closed, without draining
// what remains (matching a select on a done channel).
func (q *Queue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			var zero T
			return zero, false
		}
		if len(q.items) > 0 {
			v := q.items[0]
			q.items = q.items[1:]
			return v, true
		}
		q.cond.Wait()
	}
}

// Close marks the queue closed, wakes all poppers, and returns the
// undelivered items so the caller can fail them.
func (q *Queue[T]) Close() []T {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	rest := q.items
	q.items = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	return rest
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}
