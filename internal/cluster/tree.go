package cluster

import (
	"fmt"

	"eventspace/internal/collect"
	"eventspace/internal/metrics"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// DefaultTraceBufCap is the paper's trace buffer size: one megabyte of
// 28-byte tuples rounded to 3750 per buffer (section 6.1).
const DefaultTraceBufCap = 3750

// TreeSpec describes an allreduce spanning tree to build over a testbed.
type TreeSpec struct {
	Name string
	// Fanout is the host-level tree fanout; the paper uses a
	// hierarchy-aware 8-way tree for Tin, Iron and Copper, and a flat
	// tree for Lead. Fanout <= 0 builds a flat tree.
	Fanout int
	// ThreadsPerHost is the number of computation threads per host
	// ("one computation thread per CPU"); 0 uses the host's CPU count.
	ThreadsPerHost int
	// Reduce combines contributions (default paths.Sum).
	Reduce paths.ReduceFunc
	// Instrument inserts event collectors at every figure-1 position.
	Instrument bool
	// TraceBufCap sizes each collector's trace buffer (default 3750).
	TraceBufCap int
	// WANAllToAll replaces the inter-cluster allreduce with the
	// inter-cluster all-to-all exchange used for WAN multi-clusters.
	WANAllToAll bool
	// Notifier, when set, supplies the per-host coscheduling notifier
	// wired into every collective wrapper on that host.
	Notifier func(h *vnet.Host) paths.CollectiveNotifier
	// Metrics, when set, wires every event collector the build creates
	// into the self-metrics registry. nil disables self-metrics.
	Metrics *metrics.Registry
}

// ThreadPort is one application thread's entry into the tree.
type ThreadPort struct {
	Host  *vnet.Host
	Name  string
	Entry paths.Wrapper
}

// Node is one allreduce wrapper of the tree with its instrumentation.
type Node struct {
	Name string
	Host *vnet.Host
	AR   *paths.Allreduce
	// CollectiveEC sits after the wrapper and records t2/t3 (nil when
	// uninstrumented).
	CollectiveEC *collect.EventCollector
	// ContribECs sit on each contributor path before the wrapper and
	// record t1_i/t4_i, indexed by port.
	ContribECs []*collect.EventCollector
	// Children holds the node names feeding the non-thread ports, in
	// port order after the thread ports.
	Children []string
}

// Link is one instrumented inter-host connection of the tree.
type Link struct {
	Name     string
	From, To *vnet.Host
	// ClientEC records t1/t4 before the stub; ServerEC is the first
	// collector called by the communication thread and records t2/t3.
	ClientEC *collect.EventCollector
	ServerEC *collect.EventCollector
}

// Tree is a built spanning tree.
type Tree struct {
	Name       string
	Spec       TreeSpec
	Ports      []ThreadPort
	Nodes      []*Node
	Links      []*Link
	Results    []*pastset.Element
	Exchanges  []*paths.Exchange
	Collectors *collect.Registry

	conns []*vnet.Conn
}

// Close releases the tree's connections.
func (t *Tree) Close() {
	for _, c := range t.conns {
		c.Close()
	}
}

// ECCount returns the number of event collectors in the tree.
func (t *Tree) ECCount() int { return len(t.Collectors.All()) }

// NodeByName finds a node.
func (t *Tree) NodeByName(name string) (*Node, bool) {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return nil, false
}

// NodesOnHost returns the tree's collective wrappers on one host.
func (t *Tree) NodesOnHost(h *vnet.Host) []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.Host == h {
			out = append(out, n)
		}
	}
	return out
}

// treeBuilder carries shared state during construction.
type treeBuilder struct {
	tb   *Testbed
	spec TreeSpec
	tree *Tree
}

// ec inserts an event collector (or passes through when uninstrumented).
func (b *treeBuilder) ec(name string, host *vnet.Host, meta collect.Meta, next paths.Wrapper) (paths.Wrapper, *collect.EventCollector, error) {
	if !b.spec.Instrument {
		return next, nil, nil
	}
	cap := b.spec.TraceBufCap
	if cap <= 0 {
		cap = DefaultTraceBufCap
	}
	meta.Tree = b.spec.Name
	ecw, err := b.tree.Collectors.New(name, host, meta, next, cap)
	if err != nil {
		return nil, nil, err
	}
	return ecw, ecw, nil
}

// remote wires child -> parent with the figure-1 instrumentation:
// [client EC] -> stub -> CT -> [server EC] -> destination. It returns the
// wrapper the child should call.
func (b *treeBuilder) remote(linkName string, from, to *vnet.Host, dest paths.Wrapper) (paths.Wrapper, error) {
	serverChain, serverEC, err := b.ec(linkName+".srv", to, collect.Meta{Role: collect.RoleStubServer, Node: linkName, Contributor: -1}, dest)
	if err != nil {
		return nil, err
	}
	svc := paths.NewService()
	target := svc.Register(serverChain)
	conn := b.tb.Net.Dial(from, to, svc.Handler())
	b.tree.conns = append(b.tree.conns, conn)
	stub := paths.NewRemote(b.spec.Name+"/stub("+linkName+")", from, conn, target)
	clientChain, clientEC, err := b.ec(linkName+".cli", from, collect.Meta{Role: collect.RoleStubClient, Node: linkName, Contributor: -1}, stub)
	if err != nil {
		return nil, err
	}
	b.tree.Links = append(b.tree.Links, &Link{
		Name: linkName, From: from, To: to, ClientEC: clientEC, ServerEC: serverEC,
	})
	return clientChain, nil
}

// node creates the allreduce wrapper for one host, registers it, and
// returns it. next is the wrapper above the node (already including the
// chain towards the root); the node's collective EC is inserted between.
func (b *treeBuilder) node(name string, host *vnet.Host, fanin int, next paths.Wrapper) (*Node, error) {
	upChain, collEC, err := b.ec(name+".coll", host, collect.Meta{Role: collect.RoleCollective, Node: name, Contributor: -1}, next)
	if err != nil {
		return nil, err
	}
	reduce := b.spec.Reduce
	if reduce == nil {
		reduce = paths.Sum
	}
	ar, err := paths.NewAllreduce(name, host, fanin, reduce, upChain)
	if err != nil {
		return nil, err
	}
	if b.spec.Notifier != nil {
		ar.SetNotifier(b.spec.Notifier(host))
	}
	n := &Node{
		Name: name, Host: host, AR: ar,
		CollectiveEC: collEC,
		ContribECs:   make([]*collect.EventCollector, fanin),
	}
	b.tree.Nodes = append(b.tree.Nodes, n)
	return n, nil
}

// contribute returns the chain a contributor uses to reach port i of a
// node: [contributor EC] -> port.
func (b *treeBuilder) contribute(n *Node, port int, label string) (paths.Wrapper, error) {
	chain, ec, err := b.ec(
		fmt.Sprintf("%s.c%d", n.Name, port), n.Host,
		collect.Meta{Role: collect.RoleContributor, Node: n.Name, Contributor: port},
		n.AR.Port(port))
	if err != nil {
		return nil, err
	}
	n.ContribECs[port] = ec
	_ = label
	return chain, nil
}

// layout computes the hierarchy-aware host tree: host 0 is the root, the
// remaining hosts are split into up to f contiguous groups, each group's
// first host becomes a child of the root, and the scheme recurses within
// each group. This is the paper's "hierarchy aware, 8-way spanning tree":
// for 49 hosts it yields a root plus eight sub-roots, so collective
// wrappers live on about eight hosts. f <= 0 yields a flat tree.
func layout(n, f int) [][]int {
	kids := make([][]int, n)
	if n <= 1 {
		return kids
	}
	if f <= 0 {
		f = n - 1
	}
	var split func(root int, rest []int)
	split = func(root int, rest []int) {
		if len(rest) == 0 {
			return
		}
		groups := f
		if groups > len(rest) {
			groups = len(rest)
		}
		base := len(rest) / groups
		extra := len(rest) % groups
		off := 0
		for g := 0; g < groups; g++ {
			size := base
			if g < extra {
				size++
			}
			group := rest[off : off+size]
			off += size
			child := group[0]
			kids[root] = append(kids[root], child)
			split(child, group[1:])
		}
	}
	all := make([]int, n-1)
	for i := range all {
		all[i] = i + 1
	}
	split(0, all)
	return kids
}

// buildClusterTree builds the spanning tree inside one cluster; the root
// host's allreduce forwards (through its collective EC) to continuation,
// which must run on the cluster's root host (hosts[0]).
func (b *treeBuilder) buildClusterTree(c *vnet.Cluster, continuation paths.Wrapper) error {
	hosts := c.Hosts()
	n := len(hosts)
	threads := b.spec.ThreadsPerHost
	kidsOf := layout(n, b.spec.Fanout)

	threadCount := func(h *vnet.Host) int {
		if threads > 0 {
			return threads
		}
		return h.CPUs()
	}

	// Construct top-down so each node's upward chain exists when the
	// node is created. A host whose fan-in would be one (a single thread
	// and no child hosts) gets no collective wrapper at all — as in the
	// paper's trees, where only about eight of 49 hosts carry allreduce
	// wrappers; its thread feeds the parent's port directly through the
	// inter-host stub.
	var build func(i int, next paths.Wrapper) error
	build = func(i int, next paths.Wrapper) error {
		h := hosts[i]
		t := threadCount(h)
		kids := kidsOf[i]
		if t == 1 && len(kids) == 0 {
			b.tree.Ports = append(b.tree.Ports, ThreadPort{
				Host: h, Name: h.Name() + ".t0", Entry: next,
			})
			return nil
		}
		name := fmt.Sprintf("%s/%s", b.spec.Name, h.Name())
		node, err := b.node(name, h, t+len(kids), next)
		if err != nil {
			return err
		}
		// Thread ports first.
		for j := 0; j < t; j++ {
			entry, err := b.contribute(node, j, "thread")
			if err != nil {
				return err
			}
			b.tree.Ports = append(b.tree.Ports, ThreadPort{
				Host: h, Name: fmt.Sprintf("%s.t%d", h.Name(), j), Entry: entry,
			})
		}
		// Child-subtree ports.
		for ci, child := range kids {
			port := t + ci
			dest, err := b.contribute(node, port, "child")
			if err != nil {
				return err
			}
			linkName := fmt.Sprintf("%s/link(%s->%s)", b.spec.Name, hosts[child].Name(), h.Name())
			up, err := b.remote(linkName, hosts[child], h, dest)
			if err != nil {
				return err
			}
			if err := build(child, up); err != nil {
				return err
			}
			node.Children = append(node.Children, fmt.Sprintf("%s/%s", b.spec.Name, hosts[child].Name()))
		}
		return nil
	}
	return build(0, continuation)
}

// BuildTree constructs the spanning tree described by spec over the
// testbed: per-cluster hierarchy-aware trees, joined across clusters by an
// inter-cluster allreduce (LAN) or an all-to-all exchange (WAN).
func BuildTree(tb *Testbed, spec TreeSpec) (*Tree, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("cluster: tree needs a name")
	}
	b := &treeBuilder{
		tb:   tb,
		spec: spec,
		tree: &Tree{Name: spec.Name, Spec: spec, Collectors: collect.NewRegistry()},
	}
	b.tree.Collectors.UseMetrics(spec.Metrics)
	clusters := tb.Clusters

	result := func(h *vnet.Host, tag string) (*paths.ValueStore, error) {
		elem, err := h.Registry.Create(fmt.Sprintf("result/%s%s", spec.Name, tag), 64)
		if err != nil {
			return nil, err
		}
		b.tree.Results = append(b.tree.Results, elem)
		return paths.NewValueStore(spec.Name+"/store"+tag, h, elem), nil
	}

	reduce := spec.Reduce
	if reduce == nil {
		reduce = paths.Sum
	}

	switch {
	case len(clusters) == 1:
		store, err := result(clusters[0].Hosts()[0], "")
		if err != nil {
			return nil, err
		}
		if err := b.buildClusterTree(clusters[0], store); err != nil {
			return nil, err
		}

	case spec.WANAllToAll:
		// One exchange participant per cluster, on the cluster root
		// host, each storing the reduced value locally.
		k := len(clusters)
		exs := make([]*paths.Exchange, k)
		svcs := make([]*paths.Service, k)
		targets := make([]uint32, k)
		for i, c := range clusters {
			root := c.Hosts()[0]
			store, err := result(root, fmt.Sprintf("@%s", c.Name()))
			if err != nil {
				return nil, err
			}
			ex, err := paths.NewExchange(fmt.Sprintf("%s/x(%s)", spec.Name, c.Name()), root, i, k, reduce, store)
			if err != nil {
				return nil, err
			}
			exs[i] = ex
			svcs[i] = paths.NewService()
			targets[i] = paths.RegisterExchangeTarget(svcs[i], ex)
		}
		for i := range clusters {
			for j := range clusters {
				if i == j {
					continue
				}
				from := clusters[i].Hosts()[0]
				to := clusters[j].Hosts()[0]
				conn := tb.Net.Dial(from, to, svcs[j].Handler())
				b.tree.conns = append(b.tree.conns, conn)
				stub := paths.NewRemote(
					fmt.Sprintf("%s/xstub(%s->%s)", spec.Name, clusters[i].Name(), clusters[j].Name()),
					from, conn, targets[j])
				if err := exs[i].ConnectPeer(j, stub); err != nil {
					return nil, err
				}
			}
		}
		b.tree.Exchanges = exs
		for i, c := range clusters {
			if err := b.buildClusterTree(c, exs[i]); err != nil {
				return nil, err
			}
		}

	default:
		// LAN multi-cluster: inter-cluster allreduce on the first
		// cluster's root host.
		interHost := clusters[0].Hosts()[0]
		store, err := result(interHost, "")
		if err != nil {
			return nil, err
		}
		inter, err := b.node(spec.Name+"/inter", interHost, len(clusters), store)
		if err != nil {
			return nil, err
		}
		for i, c := range clusters {
			dest, err := b.contribute(inter, i, "cluster")
			if err != nil {
				return nil, err
			}
			inter.Children = append(inter.Children, fmt.Sprintf("%s/%s", spec.Name, c.Hosts()[0].Name()))
			cont := dest
			if c.Hosts()[0] != interHost {
				linkName := fmt.Sprintf("%s/link(%s->%s)", spec.Name, c.Hosts()[0].Name(), interHost.Name())
				cont, err = b.remote(linkName, c.Hosts()[0], interHost, dest)
				if err != nil {
					return nil, err
				}
			}
			if err := b.buildClusterTree(c, cont); err != nil {
				return nil, err
			}
		}
	}
	return b.tree, nil
}
