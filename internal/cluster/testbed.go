// Package cluster reproduces the paper's testbed (section 5) and the
// collective-operation spanning trees run on it: the four clusters
// (Copper, Lead, Tin, Iron) with their gateways, the monitor front-end,
// LAN multi-clusters, WAN multi-clusters under the Longcut emulator, and
// the spanning-tree generators — hierarchy-aware 8-way trees, flat trees,
// inter-cluster allreduce for LAN and inter-cluster all-to-all for WAN
// (as in MagPIe).
package cluster

import (
	"fmt"
	"time"

	"eventspace/internal/vnet"
	"eventspace/internal/wantrace"
)

// Class describes a host class from the paper's inventory.
type Class struct {
	Name string
	// CPUs is the modelled CPU slot count. The paper's Tin and Iron
	// hosts are single-CPU Pentium 4s with Hyper-Threading enabled;
	// HT is not a second CPU, so they are modelled with one slot —
	// which is what makes analysis threads contend with communication
	// threads exactly as in section 6.3.1.
	CPUs int
	Link vnet.LinkSpec
}

// The paper's host classes.
var (
	// Copper: 18 dual-CPU Pentium II 300 MHz, 100 Mbit Ethernet.
	Copper = Class{Name: "copper", CPUs: 2, Link: vnet.FastEthernet}
	// Lead: 10 single-CPU Mobile Pentium III 900 MHz, 100 Mbit Ethernet.
	Lead = Class{Name: "lead", CPUs: 1, Link: vnet.FastEthernet}
	// Tin: 51 Pentium 4 HT 3.2 GHz, Gigabit Ethernet.
	Tin = Class{Name: "tin", CPUs: 1, Link: vnet.GigabitEthernet}
	// Iron: 39 Pentium 4 HT 3.2 GHz EM64T, Gigabit Ethernet.
	Iron = Class{Name: "iron", CPUs: 1, Link: vnet.GigabitEthernet}
)

// ClusterSpec places a number of hosts of one class at a site.
type ClusterSpec struct {
	Name  string
	Class Class
	Hosts int
	Site  string
}

// TestbedSpec describes a whole testbed.
type TestbedSpec struct {
	Clusters []ClusterSpec
	// WAN enables the Longcut emulator between different sites.
	WAN bool
	// WANSeed seeds the synthetic latency/bandwidth trace.
	WANSeed int64
	// WANInaccuracyThreshold reproduces the emulator's degradation with
	// many concurrent emulated connections (0 disables).
	WANInaccuracyThreshold int
	// FrontEndCPUs sizes the monitor front-end host (default 2: the
	// paper uses a Pentium 4 1.8 GHz outside the clusters).
	FrontEndCPUs int
}

// Testbed is a built virtual testbed.
type Testbed struct {
	Net      *vnet.Network
	Clusters []*vnet.Cluster
	FrontEnd *vnet.Host
	Emulator *wantrace.Emulator // nil unless WAN
}

// NewTestbed builds the testbed described by spec.
func NewTestbed(spec TestbedSpec) (*Testbed, error) {
	if len(spec.Clusters) == 0 {
		return nil, fmt.Errorf("cluster: testbed has no clusters")
	}
	cost := vnet.DefaultCostModel()
	if spec.WAN {
		// Longcut gateways add their delays in user space, which is
		// heavier than plain kernel forwarding.
		cost.GatewayCPU = 25 * time.Microsecond
	}
	net := vnet.NewNetwork(vnet.FastEthernet, cost)
	tb := &Testbed{Net: net}
	for _, cs := range spec.Clusters {
		if cs.Hosts < 1 {
			return nil, fmt.Errorf("cluster: %q: %d hosts", cs.Name, cs.Hosts)
		}
		c, err := net.AddCluster(cs.Name, cs.Site, cs.Hosts, cs.Class.CPUs, cs.Class.Link)
		if err != nil {
			return nil, err
		}
		tb.Clusters = append(tb.Clusters, c)
	}
	feCPUs := spec.FrontEndCPUs
	if feCPUs < 1 {
		feCPUs = 2
	}
	fe, err := net.AddStandaloneHost("frontend", feCPUs)
	if err != nil {
		return nil, err
	}
	tb.FrontEnd = fe
	if spec.WAN {
		emu := wantrace.NewEmulator(wantrace.Generate(spec.WANSeed, 4096))
		emu.InaccuracyThreshold = spec.WANInaccuracyThreshold
		net.SetWANDelay(emu.Delay)
		tb.Emulator = emu
	}
	return tb, nil
}

// Hosts returns all compute hosts of all clusters, cluster by cluster.
func (tb *Testbed) Hosts() []*vnet.Host {
	var out []*vnet.Host
	for _, c := range tb.Clusters {
		out = append(out, c.Hosts()...)
	}
	return out
}

// Standard topologies used by the paper's experiments. Host counts are
// parameters so the suite can run scaled down; the paper's counts are the
// defaults exposed by the bench harness.

// SingleTin is a one-cluster testbed of n Tin hosts at Tromsø.
func SingleTin(n int) TestbedSpec {
	return TestbedSpec{Clusters: []ClusterSpec{
		{Name: "tin", Class: Tin, Hosts: n, Site: wantrace.Tromso},
	}}
}

// LANMulti is the paper's LAN multi-cluster: Tin and Iron hosts joined by
// 100 Mbit inter-cluster Ethernet at one site.
func LANMulti(tin, iron int) TestbedSpec {
	return TestbedSpec{Clusters: []ClusterSpec{
		{Name: "tin", Class: Tin, Hosts: tin, Site: wantrace.Tromso},
		{Name: "iron", Class: Iron, Hosts: iron, Site: wantrace.Tromso},
	}}
}

// LANMultiFour adds Copper and Lead, the largest LAN topology in table 1.
func LANMultiFour(tin, copper, lead int) TestbedSpec {
	return TestbedSpec{Clusters: []ClusterSpec{
		{Name: "tin", Class: Tin, Hosts: tin, Site: wantrace.Tromso},
		{Name: "copper", Class: Copper, Hosts: copper, Site: wantrace.Tromso},
		{Name: "lead", Class: Lead, Hosts: lead, Site: wantrace.Tromso},
	}}
}

// WANMulti splits Tin and Iron into the paper's six sub-clusters spread
// over the four trace sites (two sub-clusters in Tromsø and Odense), each
// behind its own gateway running the Longcut emulator.
func WANMulti(tinPerSub, ironPerSub int, seed int64, inaccuracyThreshold int) TestbedSpec {
	sites := []string{
		wantrace.Tromso, wantrace.Trondheim, wantrace.Odense,
		wantrace.Tromso, wantrace.Odense, wantrace.Aalborg,
	}
	spec := TestbedSpec{WAN: true, WANSeed: seed, WANInaccuracyThreshold: inaccuracyThreshold}
	for i := 0; i < 3; i++ {
		spec.Clusters = append(spec.Clusters, ClusterSpec{
			Name: fmt.Sprintf("tin%d", i), Class: Tin, Hosts: tinPerSub, Site: sites[i],
		})
	}
	for i := 0; i < 3; i++ {
		spec.Clusters = append(spec.Clusters, ClusterSpec{
			Name: fmt.Sprintf("iron%d", i), Class: Iron, Hosts: ironPerSub, Site: sites[3+i],
		})
	}
	return spec
}
