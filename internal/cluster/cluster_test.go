package cluster

import (
	"fmt"
	"sync"
	"testing"

	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
	"eventspace/internal/wantrace"
)

func fastScale(t *testing.T) {
	t.Helper()
	old := hrtime.Scale()
	hrtime.SetScale(0.002)
	t.Cleanup(func() { hrtime.SetScale(old) })
}

func TestNewTestbedValidation(t *testing.T) {
	if _, err := NewTestbed(TestbedSpec{}); err == nil {
		t.Fatal("empty testbed accepted")
	}
	if _, err := NewTestbed(TestbedSpec{Clusters: []ClusterSpec{{Name: "x", Class: Tin, Hosts: 0}}}); err == nil {
		t.Fatal("0 hosts accepted")
	}
}

func TestPaperClassInventory(t *testing.T) {
	if Copper.CPUs != 2 || Lead.CPUs != 1 || Tin.CPUs != 1 || Iron.CPUs != 1 {
		t.Fatal("CPU counts diverge from the modelled inventory")
	}
	if Tin.Link != vnet.GigabitEthernet || Lead.Link != vnet.FastEthernet {
		t.Fatal("link classes wrong")
	}
}

func TestSingleTinTestbed(t *testing.T) {
	tb, err := NewTestbed(SingleTin(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Clusters) != 1 || len(tb.Clusters[0].Hosts()) != 8 {
		t.Fatal("cluster shape wrong")
	}
	if tb.FrontEnd == nil || tb.FrontEnd.Cluster() != nil {
		t.Fatal("front-end wrong")
	}
	if tb.Emulator != nil {
		t.Fatal("LAN testbed has an emulator")
	}
	if len(tb.Hosts()) != 8 {
		t.Fatalf("Hosts() = %d", len(tb.Hosts()))
	}
}

func TestWANMultiTestbed(t *testing.T) {
	tb, err := NewTestbed(WANMulti(2, 2, 7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Clusters) != 6 {
		t.Fatalf("%d sub-clusters", len(tb.Clusters))
	}
	if tb.Emulator == nil {
		t.Fatal("no Longcut emulator")
	}
	sites := map[string]int{}
	for _, c := range tb.Clusters {
		sites[c.Site()]++
	}
	if sites[wantrace.Tromso] != 2 || sites[wantrace.Odense] != 2 || sites[wantrace.Trondheim] != 1 || sites[wantrace.Aalborg] != 1 {
		t.Fatalf("site distribution = %v", sites)
	}
}

func TestLayoutHierarchyAware(t *testing.T) {
	// 8-way over 10 hosts: nine non-root hosts split into eight groups
	// (one of size two), so the root has eight children and the first
	// group's head has one.
	kids := layout(10, 8)
	if len(kids[0]) != 8 {
		t.Fatalf("root children = %v", kids[0])
	}
	if len(kids[1]) != 1 || kids[1][0] != 2 {
		t.Fatalf("group-head children = %v", kids[1])
	}
	// 8-way over 49 hosts (the paper's Tin tree): a root plus eight
	// six-host sub-groups; collective wrappers end up on nine hosts.
	kids = layout(49, 8)
	if len(kids[0]) != 8 {
		t.Fatalf("49-host root children = %v", kids[0])
	}
	internal := 0
	covered := map[int]bool{0: true}
	for i, k := range kids {
		if len(k) > 0 {
			internal++
		}
		for _, c := range k {
			if covered[c] {
				t.Fatalf("host %d has two parents", c)
			}
			covered[c] = true
		}
		_ = i
	}
	if len(covered) != 49 {
		t.Fatalf("layout covers %d of 49 hosts", len(covered))
	}
	if internal != 9 {
		t.Fatalf("49-host internal hosts = %d, want 9 (root + 8 sub-roots)", internal)
	}
	// Flat: all under root.
	kids = layout(5, 0)
	if len(kids[0]) != 4 || len(kids[1]) != 0 {
		t.Fatalf("flat layout = %v", kids)
	}
	if kids := layout(1, 0); len(kids[0]) != 0 {
		t.Fatalf("singleton layout = %v", kids)
	}
}

// runTree drives every thread port for rounds iterations of a global sum
// where thread i contributes i, and checks every result.
func runTree(t *testing.T, tree *Tree, rounds int) {
	t.Helper()
	var want int64
	for i := range tree.Ports {
		want += int64(i)
	}
	var wg sync.WaitGroup
	for i, p := range tree.Ports {
		wg.Add(1)
		go func(i int, p ThreadPort) {
			defer wg.Done()
			ctx := &paths.Ctx{Thread: p.Name}
			for r := 0; r < rounds; r++ {
				rep, err := p.Entry.Op(ctx, paths.Request{Kind: paths.OpWrite, Value: int64(i)})
				if err != nil {
					t.Errorf("port %s round %d: %v", p.Name, r, err)
					return
				}
				if rep.Value != want {
					t.Errorf("port %s round %d: sum %d, want %d", p.Name, r, rep.Value, want)
					return
				}
			}
		}(i, p)
	}
	wg.Wait()
}

func TestBuildTreeSingleClusterFlat(t *testing.T) {
	fastScale(t)
	tb, err := NewTestbed(SingleTin(4))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(tb, TreeSpec{Name: "T", Fanout: 0, ThreadsPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if len(tree.Ports) != 4 {
		t.Fatalf("ports = %d", len(tree.Ports))
	}
	// Leaf hosts with one thread and no children get no collective
	// wrapper: only the root carries one.
	if len(tree.Nodes) != 1 {
		t.Fatalf("nodes = %d, want 1", len(tree.Nodes))
	}
	// Flat: root joins 1 thread + 3 child hosts.
	root := tree.Nodes[0]
	if root.AR.Fanin() != 4 {
		t.Fatalf("root fanin = %d", root.AR.Fanin())
	}
	if len(root.Children) != 3 {
		t.Fatalf("root children = %v", root.Children)
	}
	if tree.ECCount() != 0 {
		t.Fatalf("uninstrumented tree has %d ECs", tree.ECCount())
	}
	runTree(t, tree, 10)
	if len(tree.Results) != 1 {
		t.Fatalf("results = %d", len(tree.Results))
	}
	if tree.Results[0].Stats().Written != 10 {
		t.Fatalf("root stored %d results", tree.Results[0].Stats().Written)
	}
}

func TestBuildTreeEightWayInstrumented(t *testing.T) {
	fastScale(t)
	tb, err := NewTestbed(SingleTin(10))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(tb, TreeSpec{Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	// Collective wrappers only on internal hosts (root + one group
	// head); every non-root host still links to its parent.
	if len(tree.Nodes) != 2 || len(tree.Links) != 9 {
		t.Fatalf("nodes=%d links=%d", len(tree.Nodes), len(tree.Links))
	}
	// ECs: per node 1 collective + fanin contributors; per link 2.
	wantECs := 0
	for _, n := range tree.Nodes {
		wantECs += 1 + n.AR.Fanin()
	}
	wantECs += 2 * len(tree.Links)
	if tree.ECCount() != wantECs {
		t.Fatalf("ECs = %d, want %d", tree.ECCount(), wantECs)
	}
	runTree(t, tree, 5)
	// Every node's collective EC recorded one tuple per round, and
	// every contributor EC likewise.
	for _, n := range tree.Nodes {
		if n.CollectiveEC.Buffer().Stats().Written != 5 {
			t.Fatalf("node %s collective EC recorded %d", n.Name, n.CollectiveEC.Buffer().Stats().Written)
		}
		for i, ec := range n.ContribECs {
			if ec.Buffer().Stats().Written != 5 {
				t.Fatalf("node %s contrib %d recorded %d", n.Name, i, ec.Buffer().Stats().Written)
			}
		}
	}
	// TCP latency from any link's EC pair is positive.
	lk := tree.Links[0]
	cli, _ := lk.ClientEC.Buffer().Latest()
	srv, _ := lk.ServerEC.Buffer().Latest()
	ct, err1 := collect.Decode(cli.Data)
	st, err2 := collect.Decode(srv.Data)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if (ct.End-ct.Start)-(st.End-st.Start) <= 0 {
		t.Fatal("two-way TCP latency not positive")
	}
}

func TestBuildTreeLANMulti(t *testing.T) {
	fastScale(t)
	tb, err := NewTestbed(LANMulti(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(tb, TreeSpec{Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	// inter node + the two cluster-root nodes (leaf hosts carry none).
	if len(tree.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(tree.Nodes))
	}
	inter, ok := tree.NodeByName("T/inter")
	if !ok {
		t.Fatal("no inter node")
	}
	if inter.AR.Fanin() != 2 {
		t.Fatalf("inter fanin = %d", inter.AR.Fanin())
	}
	runTree(t, tree, 5)
	if inter.AR.Rounds() != 5 {
		t.Fatalf("inter rounds = %d", inter.AR.Rounds())
	}
}

func TestBuildTreeWANAllToAll(t *testing.T) {
	fastScale(t)
	tb, err := NewTestbed(WANMulti(2, 2, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(tb, TreeSpec{Name: "W", Fanout: 8, ThreadsPerHost: 1, WANAllToAll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if len(tree.Exchanges) != 6 {
		t.Fatalf("exchanges = %d", len(tree.Exchanges))
	}
	if len(tree.Results) != 6 {
		t.Fatalf("results = %d (one per cluster root)", len(tree.Results))
	}
	runTree(t, tree, 3)
	for i, r := range tree.Results {
		if r.Stats().Written != 3 {
			t.Fatalf("result %d has %d writes", i, r.Stats().Written)
		}
	}
}

func TestBuildTreeNotifierWired(t *testing.T) {
	fastScale(t)
	tb, err := NewTestbed(SingleTin(2))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	sent := map[string]int{}
	released := map[string]int{}
	tree, err := BuildTree(tb, TreeSpec{
		Name: "T", ThreadsPerHost: 1,
		Notifier: func(h *vnet.Host) paths.CollectiveNotifier {
			return notifierFunc{
				onSent:     func() { mu.Lock(); sent[h.Name()]++; mu.Unlock() },
				onReleased: func() { mu.Lock(); released[h.Name()]++; mu.Unlock() },
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	runTree(t, tree, 4)
	mu.Lock()
	defer mu.Unlock()
	// Only tin-0 carries a collective wrapper (tin-1 is a single-thread
	// leaf host), so only its controller sees windows.
	if sent["tin-0"] != 4 || released["tin-0"] != 4 {
		t.Fatalf("tin-0: sent=%d released=%d", sent["tin-0"], released["tin-0"])
	}
	if sent["tin-1"] != 0 {
		t.Fatalf("tin-1 saw %d windows, want 0", sent["tin-1"])
	}
}

type notifierFunc struct {
	onSent     func()
	onReleased func()
}

func (n notifierFunc) AllSent(h *vnet.Host)     { n.onSent() }
func (n notifierFunc) AllReleased(h *vnet.Host) { n.onReleased() }

func TestBuildTreeNeedsName(t *testing.T) {
	tb, _ := NewTestbed(SingleTin(2))
	if _, err := BuildTree(tb, TreeSpec{}); err == nil {
		t.Fatal("unnamed tree accepted")
	}
}

func TestBuildTwoIdenticalTrees(t *testing.T) {
	fastScale(t)
	tb, err := NewTestbed(SingleTin(3))
	if err != nil {
		t.Fatal(err)
	}
	// gsum alternates between two identical instrumented trees; their
	// trace buffers must not collide.
	t1, err := BuildTree(tb, TreeSpec{Name: "T1", ThreadsPerHost: 1, Instrument: true, TraceBufCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := BuildTree(tb, TreeSpec{Name: "T2", ThreadsPerHost: 1, Instrument: true, TraceBufCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	runTree(t, t1, 3)
	runTree(t, t2, 3)
}

func TestNodesOnHost(t *testing.T) {
	fastScale(t)
	tb, _ := NewTestbed(SingleTin(3))
	tree, err := BuildTree(tb, TreeSpec{Name: "T", ThreadsPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	root := tb.Clusters[0].Hosts()[0]
	if got := tree.NodesOnHost(root); len(got) != 1 {
		t.Fatalf("NodesOnHost(root) = %d", len(got))
	}
	if _, ok := tree.NodeByName("nope"); ok {
		t.Fatal("ghost node found")
	}
}

func TestThreadsPerHostDefaultsToCPUs(t *testing.T) {
	fastScale(t)
	tb, err := NewTestbed(TestbedSpec{Clusters: []ClusterSpec{
		{Name: "copper", Class: Copper, Hosts: 2, Site: wantrace.Tromso},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(tb, TreeSpec{Name: "T"})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	// Copper is dual-CPU: 2 threads per host.
	if len(tree.Ports) != 4 {
		t.Fatalf("ports = %d, want 4", len(tree.Ports))
	}
	runTree(t, tree, 3)
}

func TestTreePortNamesUnique(t *testing.T) {
	fastScale(t)
	tb, _ := NewTestbed(SingleTin(4))
	tree, err := BuildTree(tb, TreeSpec{Name: "T", ThreadsPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	seen := map[string]bool{}
	for _, p := range tree.Ports {
		if seen[p.Name] {
			t.Fatalf("duplicate port name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestLANMultiFourSpec(t *testing.T) {
	spec := LANMultiFour(4, 2, 2)
	if len(spec.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(spec.Clusters))
	}
	names := fmt.Sprintf("%s/%s/%s", spec.Clusters[0].Name, spec.Clusters[1].Name, spec.Clusters[2].Name)
	if names != "tin/copper/lead" {
		t.Fatalf("names = %s", names)
	}
}
