package paths

import (
	"bytes"
	"testing"
)

// The decoders face frames off the wire: any prefix, mutation, or
// garbage must come back as an error, never a panic or over-read.

func FuzzDecodeRequest(f *testing.F) {
	valid := encodeRequest(3, &Ctx{Thread: "tin-0/t1"}, Request{
		Kind:  OpWrite,
		Value: 42,
		Data:  []byte("payload"),
	})
	f.Add(valid)
	f.Add(encodeRequest(0, &Ctx{}, Request{Kind: OpRead}))
	for i := 0; i < len(valid); i += 3 {
		f.Add(valid[:i]) // truncations
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// Length fields claiming more bytes than the frame holds.
	huge := bytes.Clone(valid)
	huge[len(huge)-4] = 0xff
	f.Add(huge)

	f.Fuzz(func(t *testing.T, buf []byte) {
		target, ctx, req, err := decodeRequest(buf)
		if err != nil {
			return
		}
		// A successful decode must round-trip exactly: proof that every
		// byte was accounted for and nothing beyond buf was read.
		re := encodeRequest(target, &ctx, req)
		if !bytes.Equal(re, buf) {
			t.Fatalf("decode/encode mismatch:\n in  %x\n out %x", buf, re)
		}
	})
}

func FuzzDecodeReply(f *testing.F) {
	f.Add(encodeReply(Reply{Ret: 1, Value: -9, Data: []byte("result")}))
	f.Add(encodeReply(Reply{}))
	errFrame := encodeErrorReply(&RemoteError{Msg: "boom"})
	f.Add(errFrame)
	valid := encodeReply(Reply{Data: []byte("abcdef")})
	for i := 0; i < len(valid); i++ {
		f.Add(valid[:i])
	}
	f.Add([]byte{2})                   // unknown status byte
	f.Add([]byte{0, 0xff, 0xff, 0xff}) // short ok body
	huge := bytes.Clone(valid)
	huge[len(huge)-2] = 0xff
	f.Add(huge)

	f.Fuzz(func(t *testing.T, buf []byte) {
		rep, err := decodeReply(buf)
		if err != nil {
			if IsRemote(err) && len(buf) > 0 && buf[0] != replyAppError {
				t.Fatalf("RemoteError from a non-app-error frame %x", buf)
			}
			return
		}
		if !bytes.Equal(encodeReply(rep), buf) {
			t.Fatalf("decode/encode mismatch for %x", buf)
		}
	})
}
