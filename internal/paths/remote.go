package paths

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/vnet"
)

// Inter-host communication: a Remote wrapper (the paper's "stub") encodes
// the operation and sends it over a connection; a Service on the far host
// is invoked by the connection's communication thread and continues the
// operation down a registered wrapper chain.

// Service dispatches incoming operations to registered target wrappers.
// One service per host is typical; its Handler is installed on every
// connection whose communication thread should continue paths on that
// host.
type Service struct {
	mu      sync.RWMutex
	nextID  uint32
	targets map[uint32]Wrapper
}

// NewService returns an empty dispatch table.
func NewService() *Service {
	return &Service{targets: make(map[uint32]Wrapper)}
}

// Register adds a continuation wrapper and returns its target id for use
// by remote stubs.
func (s *Service) Register(w Wrapper) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.targets[s.nextID] = w
	return s.nextID
}

// Handler returns the vnet.Handler that decodes operations and invokes
// the target wrapper in the communication thread's context.
//
// The handler never returns a Go error: every application-level failure
// (malformed request, unknown target, a wrapper Op error) is encoded
// into the reply as a status-tagged error frame. That keeps the two
// failure classes separable at the caller — a transport error can only
// come from the transport itself.
func (s *Service) Handler() vnet.Handler {
	return func(payload []byte) ([]byte, error) {
		target, ctx, req, err := decodeRequest(payload)
		if err != nil {
			return encodeErrorReply(err), nil
		}
		s.mu.RLock()
		w, ok := s.targets[target]
		s.mu.RUnlock()
		if !ok {
			return encodeErrorReply(fmt.Errorf("paths: unknown remote target %d", target)), nil
		}
		rep, err := w.Op(&ctx, req)
		if err != nil {
			return encodeErrorReply(err), nil
		}
		return encodeReply(rep), nil
	}
}

// Remote is the stub wrapper: it forwards operations over a Caller to a
// target registered with the far host's Service. The calling thread blocks
// for the full modelled round trip, exactly as a thread blocks in the
// paper's stub while the communication thread works.
//
// With a RetryPolicy installed (SetRetry), transport faults are retried
// with backoff; with a redial function installed (SetRedial), a dead
// connection is replaced before the retry. Application errors from the
// remote chain are returned immediately, never retried.
type Remote struct {
	base

	mu     sync.Mutex
	caller vnet.Caller
	target uint32

	retry  *RetryPolicy
	redial func(stale vnet.Caller) (vnet.Caller, uint32, error)

	retries   atomic.Uint64
	reconnect atomic.Uint64

	met atomic.Pointer[RemoteMetrics]
}

// RemoteMetrics is a stub's optional self-metrics wiring: Op records
// each call's latency and reply bytes (retries included in the span);
// Retries and Redials count the fault machinery's activations. Any
// field may be nil.
type RemoteMetrics struct {
	Op      *metrics.Op
	Retries *metrics.Counter
	Redials *metrics.Counter
}

// NewRemote creates a stub on host that invokes target over caller.
func NewRemote(name string, host *vnet.Host, caller vnet.Caller, target uint32) *Remote {
	return &Remote{base: base{name, host}, caller: caller, target: target}
}

// SetRetry installs a retry policy. nil restores single-attempt calls.
func (r *Remote) SetRetry(p *RetryPolicy) *Remote {
	r.mu.Lock()
	r.retry = p
	r.mu.Unlock()
	return r
}

// SetRedial installs the reconnect path: called with the stale caller
// when the stub's connection is dead, it returns a fresh caller and
// target id. The stale caller is closed after the new one is installed,
// so owners tracking connections can drop the stale one inside f.
func (r *Remote) SetRedial(f func(stale vnet.Caller) (vnet.Caller, uint32, error)) *Remote {
	r.mu.Lock()
	r.redial = f
	r.mu.Unlock()
	return r
}

// SetMetrics installs the stub's self-metrics sites. nil disables.
func (r *Remote) SetMetrics(m *RemoteMetrics) *Remote {
	r.met.Store(m)
	return r
}

// Retries reports transport-fault retries performed; Reconnects reports
// successful redials.
func (r *Remote) Retries() uint64    { return r.retries.Load() }
func (r *Remote) Reconnects() uint64 { return r.reconnect.Load() }

func (r *Remote) transport() (vnet.Caller, uint32, *RetryPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.caller, r.target, r.retry
}

// tryReconnect swaps in a fresh connection via the redial function.
func (r *Remote) tryReconnect(stale vnet.Caller) bool {
	r.mu.Lock()
	redial := r.redial
	if redial == nil || r.caller != stale {
		// No reconnect path, or someone else already replaced the
		// connection — use whatever is installed now.
		r.mu.Unlock()
		return redial != nil
	}
	r.mu.Unlock()
	caller, target, err := redial(stale)
	if err != nil {
		return false
	}
	r.mu.Lock()
	old := r.caller
	r.caller, r.target = caller, target
	r.mu.Unlock()
	old.Close()
	r.reconnect.Add(1)
	if m := r.met.Load(); m != nil {
		m.Redials.Inc()
	}
	return true
}

// Op encodes the request, performs the remote call, and decodes the
// reply, retrying transport faults per the installed policy.
func (r *Remote) Op(ctx *Ctx, req Request) (Reply, error) {
	m := r.met.Load()
	if m == nil || m.Op == nil {
		return r.call(ctx, req)
	}
	start := hrtime.Now()
	rep, err := r.call(ctx, req)
	m.Op.Record(hrtime.Since(start), len(rep.Data), err)
	return rep, err
}

func (r *Remote) call(ctx *Ctx, req Request) (Reply, error) {
	start := hrtime.Now()
	for attempt := 1; ; attempt++ {
		caller, target, policy := r.transport()
		resp, err := caller.Call(encodeRequest(target, ctx, req))
		if err == nil {
			return decodeReply(resp)
		}
		err = fmt.Errorf("paths: %s: %w", r.name, err)
		if policy == nil || !Retryable(err) || attempt >= policy.attempts() {
			return Reply{}, err
		}
		if policy.Deadline > 0 && hrtime.Since(start) >= int64(policy.Deadline) {
			return Reply{}, err
		}
		hrtime.Sleep(policy.Backoff(attempt))
		r.retries.Add(1)
		if m := r.met.Load(); m != nil {
			m.Retries.Inc()
		}
		if ConnDead(err) {
			r.tryReconnect(caller)
		}
	}
}

// Caller returns the stub's current transport (post-redial). Owners
// tracking connections use it to untrack the final one on teardown.
func (r *Remote) Caller() vnet.Caller {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.caller
}

// Close releases the stub's connection.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.caller.Close()
}

// Wire format. Native little-endian, mirroring the paper's "binary format
// in memory using native byte ordering".
//
// request: target u32 | kind u16 | value i64 | threadLen u16 | thread |
//
//	dataLen u32 | data
//
// reply:   status u8 | body
//
//	status 0: body = ret i16 | value i64 | dataLen u32 | data
//	status 1: body = application error message (UTF-8)
const (
	replyOK       byte = 0
	replyAppError byte = 1
)

func encodeRequest(target uint32, ctx *Ctx, req Request) []byte {
	thread := ""
	if ctx != nil {
		thread = ctx.Thread
	}
	buf := make([]byte, 0, 20+len(thread)+len(req.Data))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], target)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(req.Kind))
	buf = append(buf, tmp[:2]...)
	binary.LittleEndian.PutUint64(tmp[:8], uint64(req.Value))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(thread)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, thread...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(req.Data)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, req.Data...)
	return buf
}

func decodeRequest(buf []byte) (target uint32, ctx Ctx, req Request, err error) {
	if len(buf) < 16 {
		return 0, Ctx{}, Request{}, fmt.Errorf("paths: short request frame (%d bytes)", len(buf))
	}
	target = binary.LittleEndian.Uint32(buf[0:4])
	req.Kind = OpKind(binary.LittleEndian.Uint16(buf[4:6]))
	req.Value = int64(binary.LittleEndian.Uint64(buf[6:14]))
	tlen := int(binary.LittleEndian.Uint16(buf[14:16]))
	rest := buf[16:]
	if len(rest) < tlen+4 {
		return 0, Ctx{}, Request{}, fmt.Errorf("paths: truncated request frame")
	}
	ctx.Thread = string(rest[:tlen])
	rest = rest[tlen:]
	dlen := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != dlen {
		return 0, Ctx{}, Request{}, fmt.Errorf("paths: request data length %d, frame has %d", dlen, len(rest))
	}
	if dlen > 0 {
		req.Data = rest
	}
	return target, ctx, req, nil
}

func encodeReply(rep Reply) []byte {
	buf := make([]byte, 0, 15+len(rep.Data))
	buf = append(buf, replyOK)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(rep.Ret))
	buf = append(buf, tmp[:2]...)
	binary.LittleEndian.PutUint64(tmp[:8], uint64(rep.Value))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rep.Data)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, rep.Data...)
	return buf
}

// encodeErrorReply encodes an application error as a status-tagged frame.
func encodeErrorReply(err error) []byte {
	msg := err.Error()
	buf := make([]byte, 0, 1+len(msg))
	buf = append(buf, replyAppError)
	return append(buf, msg...)
}

func decodeReply(buf []byte) (Reply, error) {
	if len(buf) < 1 {
		return Reply{}, fmt.Errorf("paths: empty reply frame")
	}
	status, body := buf[0], buf[1:]
	switch status {
	case replyAppError:
		return Reply{}, &RemoteError{Msg: string(body)}
	case replyOK:
	default:
		return Reply{}, fmt.Errorf("paths: unknown reply status %d", status)
	}
	if len(body) < 14 {
		return Reply{}, fmt.Errorf("paths: short reply frame (%d bytes)", len(buf))
	}
	var rep Reply
	rep.Ret = int16(binary.LittleEndian.Uint16(body[0:2]))
	rep.Value = int64(binary.LittleEndian.Uint64(body[2:10]))
	dlen := int(binary.LittleEndian.Uint32(body[10:14]))
	rest := body[14:]
	if len(rest) != dlen {
		return Reply{}, fmt.Errorf("paths: reply data length %d, frame has %d", dlen, len(rest))
	}
	if dlen > 0 {
		rep.Data = rest
	}
	return rep, nil
}
