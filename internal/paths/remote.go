package paths

import (
	"encoding/binary"
	"fmt"
	"sync"

	"eventspace/internal/vnet"
)

// Inter-host communication: a Remote wrapper (the paper's "stub") encodes
// the operation and sends it over a connection; a Service on the far host
// is invoked by the connection's communication thread and continues the
// operation down a registered wrapper chain.

// Service dispatches incoming operations to registered target wrappers.
// One service per host is typical; its Handler is installed on every
// connection whose communication thread should continue paths on that
// host.
type Service struct {
	mu      sync.RWMutex
	nextID  uint32
	targets map[uint32]Wrapper
}

// NewService returns an empty dispatch table.
func NewService() *Service {
	return &Service{targets: make(map[uint32]Wrapper)}
}

// Register adds a continuation wrapper and returns its target id for use
// by remote stubs.
func (s *Service) Register(w Wrapper) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.targets[s.nextID] = w
	return s.nextID
}

// Handler returns the vnet.Handler that decodes operations and invokes
// the target wrapper in the communication thread's context.
func (s *Service) Handler() vnet.Handler {
	return func(payload []byte) ([]byte, error) {
		target, ctx, req, err := decodeRequest(payload)
		if err != nil {
			return nil, err
		}
		s.mu.RLock()
		w, ok := s.targets[target]
		s.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("paths: unknown remote target %d", target)
		}
		rep, err := w.Op(&ctx, req)
		if err != nil {
			return nil, err
		}
		return encodeReply(rep), nil
	}
}

// Remote is the stub wrapper: it forwards operations over a Caller to a
// target registered with the far host's Service. The calling thread blocks
// for the full modelled round trip, exactly as a thread blocks in the
// paper's stub while the communication thread works.
type Remote struct {
	base
	caller vnet.Caller
	target uint32
}

// NewRemote creates a stub on host that invokes target over caller.
func NewRemote(name string, host *vnet.Host, caller vnet.Caller, target uint32) *Remote {
	return &Remote{base: base{name, host}, caller: caller, target: target}
}

// Op encodes the request, performs the remote call, and decodes the reply.
func (r *Remote) Op(ctx *Ctx, req Request) (Reply, error) {
	resp, err := r.caller.Call(encodeRequest(r.target, ctx, req))
	if err != nil {
		return Reply{}, fmt.Errorf("paths: %s: %w", r.name, err)
	}
	return decodeReply(resp)
}

// Close releases the stub's connection.
func (r *Remote) Close() error { return r.caller.Close() }

// Wire format. Native little-endian, mirroring the paper's "binary format
// in memory using native byte ordering".
//
// request: target u32 | kind u16 | value i64 | threadLen u16 | thread |
//          dataLen u32 | data
// reply:   ret i16 | value i64 | dataLen u32 | data

func encodeRequest(target uint32, ctx *Ctx, req Request) []byte {
	thread := ""
	if ctx != nil {
		thread = ctx.Thread
	}
	buf := make([]byte, 0, 20+len(thread)+len(req.Data))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], target)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(req.Kind))
	buf = append(buf, tmp[:2]...)
	binary.LittleEndian.PutUint64(tmp[:8], uint64(req.Value))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(thread)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, thread...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(req.Data)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, req.Data...)
	return buf
}

func decodeRequest(buf []byte) (target uint32, ctx Ctx, req Request, err error) {
	if len(buf) < 16 {
		return 0, Ctx{}, Request{}, fmt.Errorf("paths: short request frame (%d bytes)", len(buf))
	}
	target = binary.LittleEndian.Uint32(buf[0:4])
	req.Kind = OpKind(binary.LittleEndian.Uint16(buf[4:6]))
	req.Value = int64(binary.LittleEndian.Uint64(buf[6:14]))
	tlen := int(binary.LittleEndian.Uint16(buf[14:16]))
	rest := buf[16:]
	if len(rest) < tlen+4 {
		return 0, Ctx{}, Request{}, fmt.Errorf("paths: truncated request frame")
	}
	ctx.Thread = string(rest[:tlen])
	rest = rest[tlen:]
	dlen := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != dlen {
		return 0, Ctx{}, Request{}, fmt.Errorf("paths: request data length %d, frame has %d", dlen, len(rest))
	}
	if dlen > 0 {
		req.Data = rest
	}
	return target, ctx, req, nil
}

func encodeReply(rep Reply) []byte {
	buf := make([]byte, 0, 14+len(rep.Data))
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(rep.Ret))
	buf = append(buf, tmp[:2]...)
	binary.LittleEndian.PutUint64(tmp[:8], uint64(rep.Value))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rep.Data)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, rep.Data...)
	return buf
}

func decodeReply(buf []byte) (Reply, error) {
	if len(buf) < 14 {
		return Reply{}, fmt.Errorf("paths: short reply frame (%d bytes)", len(buf))
	}
	var rep Reply
	rep.Ret = int16(binary.LittleEndian.Uint16(buf[0:2]))
	rep.Value = int64(binary.LittleEndian.Uint64(buf[2:10]))
	dlen := int(binary.LittleEndian.Uint32(buf[10:14]))
	rest := buf[14:]
	if len(rest) != dlen {
		return Reply{}, fmt.Errorf("paths: reply data length %d, frame has %d", dlen, len(rest))
	}
	if dlen > 0 {
		rep.Data = rest
	}
	return rep, nil
}
