package paths

import (
	"time"
)

// RetryPolicy bounds how a Remote stub retries transport faults:
// exponential backoff with deterministic jitter, capped attempts, and an
// overall deadline in modelled time. The zero value of each field picks
// a sensible default; a nil *RetryPolicy on a stub means single-attempt
// (the pre-fault-injection behaviour).
type RetryPolicy struct {
	// MaxAttempts is the total number of call attempts (first try
	// included). 0 means 4.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each subsequent
	// retry doubles it. 0 means 200µs.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry wait. 0 means 5ms.
	MaxBackoff time.Duration
	// Deadline bounds the total modelled time spent in one Op including
	// backoffs; once exceeded no further attempt is made. 0 means no
	// deadline.
	Deadline time.Duration
	// JitterSeed drives the deterministic jitter applied to each
	// backoff. Two stubs with the same seed back off identically.
	JitterSeed uint64
}

func (p *RetryPolicy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 4
}

func (p *RetryPolicy) base() time.Duration {
	if p.BaseBackoff > 0 {
		return p.BaseBackoff
	}
	return 200 * time.Microsecond
}

func (p *RetryPolicy) cap() time.Duration {
	if p.MaxBackoff > 0 {
		return p.MaxBackoff
	}
	return 5 * time.Millisecond
}

// mix64 is splitmix64's finalizer, used for deterministic jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Jitter deterministically scales d by a factor in [0.5, 1.0) derived
// from (seed, step). The same (seed, step) pair always yields the same
// wait; different seeds de-correlate, which is what keeps simultaneous
// failures from producing synchronized retry or probe storms. It is
// shared by the stub retry backoff and the escope guard probe backoff.
func Jitter(seed, step uint64, d time.Duration) time.Duration {
	j := mix64(seed ^ step)
	factor := 0.5 + float64(j>>11)/float64(1<<53)*0.5
	return time.Duration(float64(d) * factor)
}

// Backoff returns the wait before retry attempt (1-based retry index):
// base*2^(attempt-1), capped, scaled by a deterministic jitter factor in
// [0.5, 1.0).
func (p *RetryPolicy) Backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.base()
	for i := 1; i < attempt && d < p.cap(); i++ {
		d *= 2
	}
	if d > p.cap() {
		d = p.cap()
	}
	return Jitter(p.JitterSeed, uint64(attempt), d)
}
