package paths

//lint:file-allow wallclock asserts real elapsed time to prove gather helpers run in parallel

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/pastset"
	"eventspace/internal/vnet"
)

// testNet builds a small two-cluster network at a tiny time scale.
func testNet(t *testing.T) (*vnet.Network, *vnet.Cluster, *vnet.Cluster) {
	t.Helper()
	old := hrtime.Scale()
	hrtime.SetScale(0.01)
	t.Cleanup(func() { hrtime.SetScale(old) })
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	c1, err := n.AddCluster("a", "s1", 3, 2, vnet.GigabitEthernet)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n.AddCluster("b", "s1", 3, 2, vnet.GigabitEthernet)
	if err != nil {
		t.Fatal(err)
	}
	return n, c1, c2
}

func TestOpKindString(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" {
		t.Fatal("bad op names")
	}
	if OpKind(99).String() != "op(99)" {
		t.Fatalf("unknown kind = %q", OpKind(99).String())
	}
}

func TestValueStoreWriteRead(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	elem := pastset.MustNewElement("v", 4)
	s := NewValueStore("store", h, elem)
	if s.Element() != elem {
		t.Fatal("Element() mismatch")
	}
	ctx := &Ctx{Thread: "t0"}
	rep, err := s.Op(ctx, Request{Kind: OpWrite, Value: -42})
	if err != nil || rep.Value != -42 {
		t.Fatalf("write: %+v %v", rep, err)
	}
	rep, err = s.Op(ctx, Request{Kind: OpRead})
	if err != nil || rep.Value != -42 {
		t.Fatalf("read: %+v %v", rep, err)
	}
	if _, err := s.Op(ctx, Request{Kind: OpKind(9)}); err == nil {
		t.Fatal("unsupported op accepted")
	}
}

func TestValueStoreShortTuple(t *testing.T) {
	_, c1, _ := testNet(t)
	elem := pastset.MustNewElement("v", 4)
	elem.Write([]byte{1, 2})
	s := NewValueStore("store", c1.Hosts()[0], elem)
	if _, err := s.Op(nil, Request{Kind: OpRead}); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestBatchReaderDrainsAndCaps(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	elem := pastset.MustNewElement("trace", 64)
	for i := 0; i < 10; i++ {
		elem.Write([]byte{byte(i), 0, 0, 0})
	}
	r := NewBatchReader("rd", h, elem, 4, 3)
	rep, err := r.Op(nil, Request{Kind: OpRead})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ret != 3 || len(rep.Data) != 12 {
		t.Fatalf("capped read: ret=%d len=%d", rep.Ret, len(rep.Data))
	}
	if rep.Data[0] != 0 || rep.Data[4] != 1 || rep.Data[8] != 2 {
		t.Fatalf("records out of order: % x", rep.Data)
	}
	// Uncapped reader drains the rest.
	r2 := NewBatchReader("rd2", h, elem, 4, 0)
	rep, err = r2.Op(nil, Request{Kind: OpRead})
	if err != nil || rep.Ret != 10 {
		t.Fatalf("uncapped: ret=%d err=%v", rep.Ret, err)
	}
	// Empty batch is fine.
	rep, err = r2.Op(nil, Request{Kind: OpRead})
	if err != nil || rep.Ret != 0 || len(rep.Data) != 0 {
		t.Fatalf("empty: %+v %v", rep, err)
	}
	if _, err := r2.Op(nil, Request{Kind: OpWrite}); err == nil {
		t.Fatal("write on reader accepted")
	}
	if r.Cursor() == nil {
		t.Fatal("no cursor")
	}
}

func TestBatchReaderRejectsWrongRecordSize(t *testing.T) {
	_, c1, _ := testNet(t)
	elem := pastset.MustNewElement("trace", 8)
	elem.Write([]byte{1, 2, 3})
	r := NewBatchReader("rd", c1.Hosts()[0], elem, 4, 0)
	if _, err := r.Op(nil, Request{Kind: OpRead}); err == nil {
		t.Fatal("wrong-size record accepted")
	}
}

func TestTransform(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	inner := NewFunc("f", h, func(ctx *Ctx, req Request) (Reply, error) {
		return Reply{Value: req.Value * 2}, nil
	})
	tr := NewTransform("double+1", h, inner, func(r Reply) (Reply, error) {
		r.Value++
		return r, nil
	})
	rep, err := tr.Op(nil, Request{Kind: OpWrite, Value: 10})
	if err != nil || rep.Value != 21 {
		t.Fatalf("transform: %+v %v", rep, err)
	}
	bad := NewTransform("bad", h, nil, func(r Reply) (Reply, error) { return r, nil })
	if _, err := bad.Op(nil, Request{}); !errors.Is(err, ErrNoNext) {
		t.Fatalf("nil next: %v", err)
	}
	failing := NewFunc("fail", h, func(ctx *Ctx, req Request) (Reply, error) {
		return Reply{}, errors.New("inner boom")
	})
	tr2 := NewTransform("t2", h, failing, func(r Reply) (Reply, error) { return r, nil })
	if _, err := tr2.Op(nil, Request{}); err == nil {
		t.Fatal("inner error swallowed")
	}
}

func TestAllreduceValidation(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	next := NewFunc("sink", h, func(ctx *Ctx, req Request) (Reply, error) { return Reply{Value: req.Value}, nil })
	if _, err := NewAllreduce("ar", h, 0, Sum, next); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewAllreduce("ar", h, 2, Sum, nil); err == nil {
		t.Fatal("nil next accepted")
	}
	if _, err := NewAllreduce("ar", h, 2, nil, next); err == nil {
		t.Fatal("nil reduce accepted")
	}
}

func TestAllreduceLocalRounds(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	elem := pastset.MustNewElement("root", 8)
	store := NewValueStore("store", h, elem)
	ar, err := NewAllreduce("ar", h, 4, Sum, store)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Fanin() != 4 || ar.Next() != store {
		t.Fatal("accessors wrong")
	}
	const rounds = 50
	var wg sync.WaitGroup
	results := make([][]int64, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			port := ar.Port(i)
			ctx := &Ctx{Thread: fmt.Sprintf("t%d", i)}
			for r := 0; r < rounds; r++ {
				rep, err := port.Op(ctx, Request{Kind: OpWrite, Value: int64(i + r)})
				if err != nil {
					t.Errorf("op: %v", err)
					return
				}
				results[i] = append(results[i], rep.Value)
			}
		}(i)
	}
	wg.Wait()
	for r := 0; r < rounds; r++ {
		want := int64(0+1+2+3) + int64(4*r)
		for i := 0; i < 4; i++ {
			if results[i][r] != want {
				t.Fatalf("round %d thread %d: got %d, want %d", r, i, results[i][r], want)
			}
		}
	}
	if ar.Rounds() != rounds {
		t.Fatalf("Rounds = %d, want %d", ar.Rounds(), rounds)
	}
	if st := elem.Stats(); st.Written != rounds {
		t.Fatalf("root stored %d values", st.Written)
	}
}

func TestAllreducePortNames(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	next := NewFunc("sink", h, func(ctx *Ctx, req Request) (Reply, error) { return Reply{Value: req.Value}, nil })
	ar, _ := NewAllreduce("ar", h, 2, Sum, next)
	p := ar.Port(1)
	if p.Name() != "ar.port1" || p.Host() != h {
		t.Fatalf("port = %q on %v", p.Name(), p.Host().Name())
	}
}

func TestAllreduceErrorPropagatesToAllWaiters(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	boom := NewFunc("boom", h, func(ctx *Ctx, req Request) (Reply, error) {
		return Reply{}, errors.New("upward failed")
	})
	ar, _ := NewAllreduce("ar", h, 3, Sum, boom)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ar.Port(i).Op(nil, Request{Kind: OpWrite, Value: 1})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d got no error", i)
		}
	}
}

type recordingNotifier struct {
	mu       sync.Mutex
	sent     int
	released int
}

func (r *recordingNotifier) AllSent(h *vnet.Host)     { r.mu.Lock(); r.sent++; r.mu.Unlock() }
func (r *recordingNotifier) AllReleased(h *vnet.Host) { r.mu.Lock(); r.released++; r.mu.Unlock() }

func TestAllreduceNotifier(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	next := NewFunc("sink", h, func(ctx *Ctx, req Request) (Reply, error) { return Reply{Value: req.Value}, nil })
	ar, _ := NewAllreduce("ar", h, 2, Sum, next)
	n := &recordingNotifier{}
	ar.SetNotifier(n)
	const rounds = 10
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := ar.Port(i).Op(nil, Request{Kind: OpWrite, Value: 1}); err != nil {
					t.Errorf("op: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	if n.sent != rounds || n.released != rounds {
		t.Fatalf("notifier: sent=%d released=%d, want %d each", n.sent, n.released, rounds)
	}
}

func TestBarrierIgnoresValues(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	next := NewFunc("sink", h, func(ctx *Ctx, req Request) (Reply, error) { return Reply{Value: req.Value}, nil })
	b, err := Barrier("bar", h, 2, next)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := b.Port(i).Op(nil, Request{Kind: OpWrite, Value: int64(100 + i)})
			if err != nil || rep.Value != 0 {
				t.Errorf("barrier: %+v %v", rep, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestRemoteThroughService(t *testing.T) {
	n, c1, c2 := testNet(t)
	client := c1.Hosts()[0]
	server := c2.Hosts()[0]
	svc := NewService()
	target := svc.Register(NewFunc("echo", server, func(ctx *Ctx, req Request) (Reply, error) {
		if ctx.Thread != "t7" {
			return Reply{}, fmt.Errorf("ctx lost: %q", ctx.Thread)
		}
		return Reply{Value: req.Value + 1, Data: append([]byte("srv:"), req.Data...), Ret: 5}, nil
	}))
	conn := n.Dial(client, server, svc.Handler())
	defer conn.Close()
	stub := NewRemote("stub", client, conn, target)
	rep, err := stub.Op(&Ctx{Thread: "t7"}, Request{Kind: OpWrite, Value: 41, Data: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != 42 || string(rep.Data) != "srv:hi" || rep.Ret != 5 {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestRemoteUnknownTarget(t *testing.T) {
	n, c1, c2 := testNet(t)
	svc := NewService()
	conn := n.Dial(c1.Hosts()[0], c2.Hosts()[0], svc.Handler())
	defer conn.Close()
	stub := NewRemote("stub", c1.Hosts()[0], conn, 999)
	if _, err := stub.Op(nil, Request{Kind: OpWrite}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	n, c1, c2 := testNet(t)
	svc := NewService()
	target := svc.Register(NewFunc("fail", c2.Hosts()[0], func(ctx *Ctx, req Request) (Reply, error) {
		return Reply{}, errors.New("remote boom")
	}))
	conn := n.Dial(c1.Hosts()[0], c2.Hosts()[0], svc.Handler())
	defer conn.Close()
	stub := NewRemote("stub", c1.Hosts()[0], conn, target)
	if _, err := stub.Op(nil, Request{Kind: OpWrite}); err == nil {
		t.Fatal("remote error swallowed")
	}
}

func TestQuickRequestCodecRoundTrip(t *testing.T) {
	f := func(target uint32, kind uint16, value int64, thread string, data []byte) bool {
		if len(thread) > 1000 {
			thread = thread[:1000]
		}
		ctx := &Ctx{Thread: thread}
		req := Request{Kind: OpKind(kind), Value: value, Data: data}
		gotTarget, gotCtx, gotReq, err := decodeRequest(encodeRequest(target, ctx, req))
		if err != nil {
			return false
		}
		return gotTarget == target &&
			gotCtx.Thread == thread &&
			gotReq.Kind == req.Kind &&
			gotReq.Value == value &&
			bytes.Equal(gotReq.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReplyCodecRoundTrip(t *testing.T) {
	f := func(ret int16, value int64, data []byte) bool {
		rep := Reply{Ret: ret, Value: value, Data: data}
		got, err := decodeReply(encodeReply(rep))
		if err != nil {
			return false
		}
		return got.Ret == ret && got.Value == value && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncatedFrames(t *testing.T) {
	full := encodeRequest(1, &Ctx{Thread: "abc"}, Request{Kind: OpWrite, Value: 1, Data: []byte("xyz")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := decodeRequest(full[:cut]); err == nil {
			t.Fatalf("truncated request at %d accepted", cut)
		}
	}
	fullRep := encodeReply(Reply{Ret: 1, Value: 2, Data: []byte("abc")})
	for cut := 0; cut < len(fullRep); cut++ {
		if _, err := decodeReply(fullRep[:cut]); err == nil {
			t.Fatalf("truncated reply at %d accepted", cut)
		}
	}
}

// TestTwoLevelTreeAcrossHosts builds the figure 1 shape: a leaf allreduce
// per host joining local threads, the remote leaf forwarding through a
// stub and communication thread into a port of the root allreduce.
func TestTwoLevelTreeAcrossHosts(t *testing.T) {
	n, c1, _ := testNet(t)
	rootHost := c1.Hosts()[0]
	leafHost := c1.Hosts()[1]

	rootElem := pastset.MustNewElement("result", 8)
	store := NewValueStore("store", rootHost, rootElem)
	root, err := NewAllreduce("root", rootHost, 2, Sum, store)
	if err != nil {
		t.Fatal(err)
	}
	// Local leaf on the root host joins threads T1,T2 then feeds port 0.
	leafA, err := NewAllreduce("leafA", rootHost, 2, Sum, root.Port(0))
	if err != nil {
		t.Fatal(err)
	}
	// Remote leaf joins T3,T4, then its combined value crosses the
	// network into port 1.
	svc := NewService()
	target := svc.Register(root.Port(1))
	conn := n.Dial(leafHost, rootHost, svc.Handler())
	defer conn.Close()
	stub := NewRemote("stub", leafHost, conn, target)
	leafB, err := NewAllreduce("leafB", leafHost, 2, Sum, stub)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	ports := []Wrapper{leafA.Port(0), leafA.Port(1), leafB.Port(0), leafB.Port(1)}
	var wg sync.WaitGroup
	for i, p := range ports {
		wg.Add(1)
		go func(i int, p Wrapper) {
			defer wg.Done()
			ctx := &Ctx{Thread: fmt.Sprintf("t%d", i)}
			for r := 0; r < rounds; r++ {
				rep, err := p.Op(ctx, Request{Kind: OpWrite, Value: int64(i)})
				if err != nil {
					t.Errorf("thread %d round %d: %v", i, r, err)
					return
				}
				if rep.Value != 0+1+2+3 {
					t.Errorf("thread %d round %d: sum = %d", i, r, rep.Value)
					return
				}
			}
		}(i, p)
	}
	wg.Wait()
	if st := rootElem.Stats(); st.Written != rounds {
		t.Fatalf("root element has %d writes, want %d", st.Written, rounds)
	}
}

func TestGatherValidation(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	if _, err := NewGather("g", h, nil, 0); err == nil {
		t.Fatal("no children accepted")
	}
	child := NewFunc("c", h, func(ctx *Ctx, req Request) (Reply, error) { return Reply{}, nil })
	if _, err := NewGather("g", h, []Wrapper{child}, -1); err == nil {
		t.Fatal("negative helpers accepted")
	}
}

func TestGatherSequentialAndParallel(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	mk := func(tag byte, n int) Wrapper {
		elem := pastset.MustNewElement(fmt.Sprintf("e%d", tag), 16)
		for i := 0; i < n; i++ {
			elem.Write([]byte{tag, byte(i)})
		}
		return NewBatchReader(fmt.Sprintf("rd%d", tag), h, elem, 2, 0)
	}
	for _, helpers := range []int{0, 3} {
		g, err := NewGather("g", h, []Wrapper{mk(1, 2), mk(2, 1), mk(3, 3)}, helpers)
		if err != nil {
			t.Fatal(err)
		}
		if g.Helpers() != helpers || len(g.Children()) != 3 {
			t.Fatal("accessors wrong")
		}
		rep, err := g.Op(nil, Request{Kind: OpRead})
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{1, 0, 1, 1, 2, 0, 3, 0, 3, 1, 3, 2}
		if !bytes.Equal(rep.Data, want) || rep.Ret != 6 {
			t.Fatalf("helpers=%d: data=% x ret=%d", helpers, rep.Data, rep.Ret)
		}
		if _, err := g.Op(nil, Request{Kind: OpWrite}); err == nil {
			t.Fatal("write on gather accepted")
		}
	}
}

func TestGatherChildErrorWins(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	ok := NewFunc("ok", h, func(ctx *Ctx, req Request) (Reply, error) { return Reply{Data: []byte{1}}, nil })
	bad := NewFunc("bad", h, func(ctx *Ctx, req Request) (Reply, error) { return Reply{}, errors.New("child boom") })
	g, _ := NewGather("g", h, []Wrapper{ok, bad}, 0)
	if _, err := g.Op(nil, Request{Kind: OpRead}); err == nil {
		t.Fatal("child error swallowed")
	}
}

// Helper threads must genuinely overlap slow children: with every child
// blocked the same modelled time, parallel gathering finishes in roughly
// one child's time while sequential pays the sum. (This is the mechanism
// behind the Table 2 sequential/parallel gather-rate crossover.)
func TestGatherHelpersOverlapSlowChildren(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	const children = 4
	const delay = 50 * time.Millisecond // modelled; 0.5ms real at scale 0.01
	mk := func(i int) Wrapper {
		return NewFunc(fmt.Sprintf("slow%d", i), h, func(ctx *Ctx, req Request) (Reply, error) {
			hrtime.Sleep(delay)
			return Reply{Ret: 1, Data: []byte{byte(i)}}, nil
		})
	}
	var kids []Wrapper
	for i := 0; i < children; i++ {
		kids = append(kids, mk(i))
	}
	elapsed := func(helpers int) time.Duration {
		g, err := NewGather("g", h, kids, helpers)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		rep, err := g.Op(nil, Request{Kind: OpRead})
		if err != nil || rep.Ret != children {
			t.Fatalf("helpers=%d: %+v, %v", helpers, rep, err)
		}
		return time.Since(start)
	}
	seq := elapsed(0)
	par := elapsed(children)
	if par*2 >= seq {
		t.Fatalf("parallel gather %v not ~%dx faster than sequential %v: helpers do not overlap",
			par, children, seq)
	}
}

func TestScatterRoutesRecords(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	e1 := pastset.MustNewElement("a", 8)
	e2 := pastset.MustNewElement("b", 8)
	sc, err := NewScatter("sc", h, 2, func(rec []byte) (*pastset.Element, error) {
		switch rec[0] {
		case 1:
			return e1, nil
		case 2:
			return e2, nil
		case 3:
			return nil, nil // filtered
		default:
			return nil, fmt.Errorf("bad tag %d", rec[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Op(nil, Request{Kind: OpWrite, Data: []byte{1, 10, 2, 20, 3, 30, 1, 11}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ret != 3 {
		t.Fatalf("scattered %d records, want 3", rep.Ret)
	}
	if e1.Stats().Written != 2 || e2.Stats().Written != 1 {
		t.Fatalf("routing wrong: e1=%d e2=%d", e1.Stats().Written, e2.Stats().Written)
	}
	if _, err := sc.Op(nil, Request{Kind: OpWrite, Data: []byte{9, 9}}); err == nil {
		t.Fatal("route error swallowed")
	}
	if _, err := sc.Op(nil, Request{Kind: OpWrite, Data: []byte{1}}); err == nil {
		t.Fatal("ragged payload accepted")
	}
	if _, err := sc.Op(nil, Request{Kind: OpRead}); err == nil {
		t.Fatal("read on scatter accepted")
	}
}

func TestScatterValidation(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	if _, err := NewScatter("s", h, 0, func([]byte) (*pastset.Element, error) { return nil, nil }); err == nil {
		t.Fatal("record size 0 accepted")
	}
	if _, err := NewScatter("s", h, 4, nil); err == nil {
		t.Fatal("nil route accepted")
	}
}

func TestExchangeAllToAll(t *testing.T) {
	n, c1, c2 := testNet(t)
	hosts := []*vnet.Host{c1.Hosts()[0], c1.Hosts()[1], c2.Hosts()[0]}
	const k = 3
	exs := make([]*Exchange, k)
	svcs := make([]*Service, k)
	for i := 0; i < k; i++ {
		var err error
		exs[i], err = NewExchange(fmt.Sprintf("ex%d", i), hosts[i], i, k, Sum, nil)
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = NewService()
	}
	targets := make([]uint32, k)
	for i := 0; i < k; i++ {
		targets[i] = RegisterExchangeTarget(svcs[i], exs[i])
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			conn := n.Dial(hosts[i], hosts[j], svcs[j].Handler())
			defer conn.Close()
			stub := NewRemote(fmt.Sprintf("stub%d-%d", i, j), hosts[i], conn, targets[j])
			if err := exs[i].ConnectPeer(j, stub); err != nil {
				t.Fatal(err)
			}
		}
	}
	const rounds = 10
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				rep, err := exs[i].Op(nil, Request{Kind: OpWrite, Value: int64((i + 1) * (r + 1))})
				if err != nil {
					t.Errorf("ex%d round %d: %v", i, r, err)
					return
				}
				want := int64((1 + 2 + 3) * (r + 1))
				if rep.Value != want {
					t.Errorf("ex%d round %d: got %d, want %d", i, r, rep.Value, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestExchangeValidation(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	if _, err := NewExchange("e", h, 2, 2, Sum, nil); err == nil {
		t.Fatal("id out of range accepted")
	}
	if _, err := NewExchange("e", h, 0, 2, nil, nil); err == nil {
		t.Fatal("nil reduce accepted")
	}
	e, _ := NewExchange("e", h, 0, 3, Sum, nil)
	if err := e.ConnectPeer(0, nil); err == nil {
		t.Fatal("self peer accepted")
	}
	if err := e.ConnectPeer(5, nil); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
	if _, err := e.Op(nil, Request{Kind: OpWrite, Value: 1}); err == nil {
		t.Fatal("op with missing peers accepted")
	}
	if e.ID() != 0 || e.Participants() != 3 {
		t.Fatal("accessors wrong")
	}
}

func TestExchangeStoresViaNext(t *testing.T) {
	n, c1, _ := testNet(t)
	hosts := []*vnet.Host{c1.Hosts()[0], c1.Hosts()[1]}
	elems := []*pastset.Element{pastset.MustNewElement("r0", 8), pastset.MustNewElement("r1", 8)}
	exs := make([]*Exchange, 2)
	svcs := []*Service{NewService(), NewService()}
	for i := 0; i < 2; i++ {
		store := NewValueStore("st", hosts[i], elems[i])
		var err error
		exs[i], err = NewExchange(fmt.Sprintf("ex%d", i), hosts[i], i, 2, Max, store)
		if err != nil {
			t.Fatal(err)
		}
	}
	t0 := RegisterExchangeTarget(svcs[0], exs[0])
	t1 := RegisterExchangeTarget(svcs[1], exs[1])
	c01 := n.Dial(hosts[0], hosts[1], svcs[1].Handler())
	c10 := n.Dial(hosts[1], hosts[0], svcs[0].Handler())
	defer c01.Close()
	defer c10.Close()
	exs[0].ConnectPeer(1, NewRemote("s01", hosts[0], c01, t1))
	exs[1].ConnectPeer(0, NewRemote("s10", hosts[1], c10, t0))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := exs[i].Op(nil, Request{Kind: OpWrite, Value: int64(10 * (i + 1))})
			if err != nil || rep.Value != 20 {
				t.Errorf("ex%d: %+v %v", i, rep, err)
			}
		}(i)
	}
	wg.Wait()
	for i, e := range elems {
		tu, err := e.Latest()
		if err != nil {
			t.Fatalf("elem %d: %v", i, err)
		}
		if len(tu.Data) != 8 {
			t.Fatalf("elem %d tuple size %d", i, len(tu.Data))
		}
	}
}

func TestReduceFuncs(t *testing.T) {
	if Sum(2, 3) != 5 || Max(2, 3) != 3 || Max(4, 1) != 4 || Min(2, 3) != 2 || Min(4, 1) != 1 {
		t.Fatal("reduce funcs broken")
	}
}

func TestPathWrapsHead(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	f := NewFunc("f", h, func(ctx *Ctx, req Request) (Reply, error) { return Reply{Value: 7}, nil })
	p := NewPath("p", f)
	if p.Name() != "p" || p.Head() != f {
		t.Fatal("accessors wrong")
	}
	rep, err := p.Op(nil, Request{Kind: OpWrite})
	if err != nil || rep.Value != 7 {
		t.Fatalf("path op: %+v %v", rep, err)
	}
}

func TestWireSizes(t *testing.T) {
	r := Request{Data: make([]byte, 10)}
	if r.WireSize() != 26 {
		t.Fatalf("request wire size = %d", r.WireSize())
	}
	rep := Reply{Data: make([]byte, 5)}
	if rep.WireSize() != 21 {
		t.Fatalf("reply wire size = %d", rep.WireSize())
	}
}
