package paths

import (
	"bytes"
	"testing"
)

// Runtime child-set mutation: the repair primitives re-parent children
// between gathers while pulls are in flight, so the copy-on-write set
// must add, remove and replace by identity without disturbing order.
func TestGatherChildMutation(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	mk := func(tag byte) Wrapper {
		return NewFunc("c", h, func(ctx *Ctx, req Request) (Reply, error) {
			return Reply{Data: []byte{tag}, Ret: 1}, nil
		})
	}
	a, b, c, d := mk(1), mk(2), mk(3), mk(4)
	g, err := NewGather("g", h, []Wrapper{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}

	read := func() []byte {
		t.Helper()
		rep, err := g.Op(nil, Request{Kind: OpRead})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Data
	}
	if got := read(); !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("initial read = % x", got)
	}

	g.AddChild(c)
	if got := read(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("after add = % x", got)
	}

	// Replace preserves position; replacing an absent child is a no-op.
	if !g.ReplaceChild(b, d) {
		t.Fatal("replace of present child failed")
	}
	if g.ReplaceChild(b, a) {
		t.Fatal("replace of absent child succeeded")
	}
	if got := read(); !bytes.Equal(got, []byte{1, 4, 3}) {
		t.Fatalf("after replace = % x", got)
	}

	if !g.RemoveChild(a) {
		t.Fatal("remove of present child failed")
	}
	if g.RemoveChild(a) {
		t.Fatal("remove of absent child succeeded")
	}
	if got := read(); !bytes.Equal(got, []byte{4, 3}) {
		t.Fatalf("after remove = % x", got)
	}

	// A gather may be drained empty; it answers reads with an empty
	// reply until children come back.
	g.RemoveChild(d)
	g.RemoveChild(c)
	if len(g.Children()) != 0 {
		t.Fatalf("children = %d, want 0", len(g.Children()))
	}
	rep, err := g.Op(nil, Request{Kind: OpRead})
	if err != nil || len(rep.Data) != 0 || rep.Ret != 0 {
		t.Fatalf("empty gather read = %+v, %v", rep, err)
	}
	g.AddChild(a)
	if got := read(); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("after re-add = % x", got)
	}
}
