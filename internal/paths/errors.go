package paths

import (
	"errors"
	"io"
	"net"
	"syscall"

	"eventspace/internal/vnet"
)

// Error classification. The retry layer (and escope's health tracking)
// must distinguish a transport fault — dead connection, lost message,
// crashed host — from a legitimate application error returned by the
// remote wrapper chain. Transport faults are retryable: the same
// operation may succeed on a new attempt or a new connection.
// Application errors are authoritative: retrying would re-run the remote
// operation for the same deterministic failure.

// RemoteError is an application-level error relayed from the remote
// wrapper chain: the call itself succeeded, the remote Op failed. It is
// never retryable.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "paths: remote: " + e.Msg }

// IsRemote reports whether err is (or wraps) an application error from
// the remote side.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Retryable reports whether err is a transport fault that a retry (and
// possibly a reconnect) could fix. Application errors, encode/decode
// errors and unknown errors are not retryable.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if IsRemote(err) {
		return false
	}
	if errors.Is(err, vnet.ErrConnClosed) ||
		errors.Is(err, vnet.ErrTimeout) ||
		errors.Is(err, vnet.ErrHostDown) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// ConnDead reports whether err indicates the underlying connection is
// unusable and a redial is needed (as opposed to a timeout or a down
// host, where the connection itself may still be fine once the fault
// clears).
func ConnDead(err error) bool {
	if !Retryable(err) {
		return false
	}
	return !errors.Is(err, vnet.ErrTimeout) && !errors.Is(err, vnet.ErrHostDown)
}
