// Package paths implements the PATHS communication system the monitored
// applications use (Bjørndalen, 2003), as described in sections 3 and 4 of
// the paper.
//
// Threads communicate through *paths*: chains of *wrappers* that start at a
// thread and end in a PastSet buffer. Each wrapper runs code before and
// after invoking the next wrapper in the path. Wrappers implement storage
// (PastSet element access), data manipulation (reduction, filtering,
// conversion), gathering and scattering, inter-host communication (a stub
// forwarding operations to a communication thread on another host), and
// collective operations (the allreduce wrapper that joins several
// contributor paths into a spanning tree, and the all-to-all exchange used
// between clusters on WAN multi-clusters).
//
// Spanning trees are configured by composing wrappers and choosing which
// host each wrapper runs on; package cluster provides the generators for
// the tree shapes used in the paper.
package paths

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/pastset"
	"eventspace/internal/vnet"
)

// OpKind is the PastSet operation type carried by a request. It is also
// recorded in trace tuples.
type OpKind uint16

// Operation kinds.
const (
	OpWrite OpKind = iota + 1 // write a value/tuple (allreduce contributions are writes)
	OpRead                    // read tuples (event scopes pull trace data)
	// OpMode marks a control tuple: a monitor degradation-mode transition
	// recorded into the trace stream so archive replay reproduces
	// degraded runs. Control tuples carry the reserved collector id 0 and
	// never travel down a path as requests.
	OpMode
	// OpAlert marks a control tuple: a continuous query firing on the
	// live gather stream. Like OpMode it rides the reserved collector
	// id 0, is archived alongside data tuples, and never travels down a
	// path as a request — replaying an archive regenerates the identical
	// alert stream from the data tuples alone.
	OpAlert
	// OpCheckpoint marks a control tuple: a recovery checkpoint was
	// written for the monitor state covering every tuple archived
	// before it. The tuple records the checkpoint's chain sequence and
	// archive cursor, so replay tooling can see where bounded-time
	// recovery may begin; the state itself lives in the sidecar
	// ckpt-*.eckpt chain next to the segments.
	OpCheckpoint
)

// String returns the conventional name of the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpMode:
		return "mode"
	case OpAlert:
		return "alert"
	case OpCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("op(%d)", uint16(k))
	}
}

// Request is an operation travelling down a path. Collective contributions
// carry Value (the paper's benchmarks use 8-byte messages); event-scope
// reads and gathers carry Data.
type Request struct {
	Kind  OpKind
	Value int64
	Data  []byte
}

// WireSize returns the modelled on-the-wire size of the request in bytes:
// a small header plus the payload.
func (r Request) WireSize() int { return 16 + len(r.Data) }

// Reply is the result travelling back up a path.
type Reply struct {
	Value int64
	Data  []byte
	Ret   int16 // return code recorded in trace tuples (e.g. tuple count)
}

// WireSize returns the modelled on-the-wire size of the reply in bytes.
func (r Reply) WireSize() int { return 16 + len(r.Data) }

// Ctx identifies the thread performing an operation. It travels with the
// operation, including across hosts.
type Ctx struct {
	Thread string
}

// Wrapper is one stage in a path.
type Wrapper interface {
	// Name identifies the wrapper in configurations and visualizations.
	Name() string
	// Host is the host whose resources the wrapper's code uses.
	Host() *vnet.Host
	// Op performs the operation, usually delegating to the next wrapper.
	Op(ctx *Ctx, req Request) (Reply, error)
}

// Path is a thread's entry into the communication system: a named head
// wrapper.
type Path struct {
	name string
	head Wrapper
}

// NewPath names a wrapper chain.
func NewPath(name string, head Wrapper) *Path {
	return &Path{name: name, head: head}
}

// Name returns the path's name.
func (p *Path) Name() string { return p.name }

// Head returns the first wrapper of the path.
func (p *Path) Head() Wrapper { return p.head }

// Op performs an operation through the path.
func (p *Path) Op(ctx *Ctx, req Request) (Reply, error) {
	return p.head.Op(ctx, req)
}

// base carries the name/host boilerplate shared by wrapper implementations.
type base struct {
	name string
	host *vnet.Host
}

func (b base) Name() string     { return b.name }
func (b base) Host() *vnet.Host { return b.host }

// ErrNoNext is returned when a wrapper that requires a next stage has none.
var ErrNoNext = errors.New("paths: wrapper has no next stage")

// --- Storage wrappers -------------------------------------------------

// ValueStore terminates a path in a PastSet element, storing written
// values as 8-byte tuples. It echoes the written value back, which is how
// the root of an allreduce tree returns the reduced value while storing it
// (figure 1: the reduced value is stored in a PastSet buffer).
type ValueStore struct {
	base
	elem *pastset.Element
}

// NewValueStore creates a storage wrapper over elem on host.
func NewValueStore(name string, host *vnet.Host, elem *pastset.Element) *ValueStore {
	return &ValueStore{base: base{name, host}, elem: elem}
}

// Element returns the underlying PastSet element.
func (s *ValueStore) Element() *pastset.Element { return s.elem }

// Op stores written values; reads return the newest stored value.
func (s *ValueStore) Op(ctx *Ctx, req Request) (Reply, error) {
	switch req.Kind {
	case OpWrite:
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(req.Value))
		if _, err := s.elem.Write(buf); err != nil {
			return Reply{}, err
		}
		return Reply{Value: req.Value}, nil
	case OpRead:
		t, err := s.elem.Latest()
		if err != nil {
			return Reply{}, err
		}
		if len(t.Data) < 8 {
			return Reply{}, fmt.Errorf("paths: %s: short value tuple (%d bytes)", s.name, len(t.Data))
		}
		return Reply{Value: int64(binary.LittleEndian.Uint64(t.Data))}, nil
	default:
		return Reply{}, fmt.Errorf("paths: %s: unsupported op %v", s.name, req.Kind)
	}
}

// BatchReader terminates a read path in a PastSet element with a private
// cursor, returning all unread retained tuples concatenated into one large
// payload. Records must be fixed-size for downstream stages to parse; the
// record size is carried for validation. It is the storage wrapper event
// scopes use to drain trace buffers.
type BatchReader struct {
	base
	cursor  *pastset.Cursor
	recSize int
	max     int // maximum records per read; 0 = unlimited
	met     atomic.Pointer[metrics.Op]
}

// NewBatchReader creates a draining reader over elem. recSize is the fixed
// record size in bytes; maxRecords bounds one batch (0 = unlimited).
func NewBatchReader(name string, host *vnet.Host, elem *pastset.Element, recSize, maxRecords int) *BatchReader {
	return &BatchReader{
		base:    base{name, host},
		cursor:  elem.NewCursor(),
		recSize: recSize,
		max:     maxRecords,
	}
}

// NewBatchReaderAtEnd is NewBatchReader with the cursor positioned after
// the newest retained tuple: only tuples written after this call are
// seen. A replacement scope built during front-end failover uses it so
// its archive recorder does not re-archive tuples the sealed archive
// already holds.
func NewBatchReaderAtEnd(name string, host *vnet.Host, elem *pastset.Element, recSize, maxRecords int) *BatchReader {
	return &BatchReader{
		base:    base{name, host},
		cursor:  elem.NewCursorAtEnd(),
		recSize: recSize,
		max:     maxRecords,
	}
}

// Cursor exposes the reader's cursor for gather-rate accounting.
func (r *BatchReader) Cursor() *pastset.Cursor { return r.cursor }

// SetMetrics installs the reader's self-metrics site. nil disables.
func (r *BatchReader) SetMetrics(op *metrics.Op) *BatchReader {
	r.met.Store(op)
	return r
}

// Op drains unread tuples (up to the batch cap) and returns them
// concatenated. Ret holds the record count. Reads never block: an empty
// batch is a valid reply.
func (r *BatchReader) Op(ctx *Ctx, req Request) (Reply, error) {
	m := r.met.Load()
	if m == nil {
		return r.drain(ctx, req)
	}
	start := hrtime.Now()
	rep, err := r.drain(ctx, req)
	m.Record(hrtime.Since(start), len(rep.Data), err)
	return rep, err
}

func (r *BatchReader) drain(ctx *Ctx, req Request) (Reply, error) {
	if req.Kind != OpRead {
		return Reply{}, fmt.Errorf("paths: %s: unsupported op %v", r.name, req.Kind)
	}
	// One lock acquisition and one bounds-checked copy per record; the
	// reply buffer is freshly sized because it is handed up the gather
	// tree and retained beyond this call.
	out, n, err := r.cursor.DrainBytesInto(nil, r.max, r.recSize)
	if err != nil {
		return Reply{}, fmt.Errorf("paths: %s: %v", r.name, err)
	}
	return Reply{Data: out, Ret: int16(min(n, 1<<15-1))}, nil
}

// Transform is a data-manipulation wrapper: it forwards the request and
// rewrites the reply. The paper's single-scope load-balance monitor uses a
// transform as its reduce wrapper ("find the tuple with the largest down
// timestamp").
type Transform struct {
	base
	next Wrapper
	fn   func(Reply) (Reply, error)
}

// NewTransform wraps next with a reply-rewriting function.
func NewTransform(name string, host *vnet.Host, next Wrapper, fn func(Reply) (Reply, error)) *Transform {
	return &Transform{base: base{name, host}, next: next, fn: fn}
}

// Op forwards the request and applies the transform to the reply.
func (t *Transform) Op(ctx *Ctx, req Request) (Reply, error) {
	if t.next == nil {
		return Reply{}, fmt.Errorf("%s: %w", t.name, ErrNoNext)
	}
	rep, err := t.next.Op(ctx, req)
	if err != nil {
		return Reply{}, err
	}
	return t.fn(rep)
}

// Func adapts a plain function into a terminal wrapper; useful in tests
// and for custom monitor stages.
type Func struct {
	base
	fn func(ctx *Ctx, req Request) (Reply, error)
}

// NewFunc creates a function wrapper.
func NewFunc(name string, host *vnet.Host, fn func(ctx *Ctx, req Request) (Reply, error)) *Func {
	return &Func{base: base{name, host}, fn: fn}
}

// Op invokes the wrapped function.
func (f *Func) Op(ctx *Ctx, req Request) (Reply, error) { return f.fn(ctx, req) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
