package paths

import (
	"fmt"
	"sync"
	"testing"

	"eventspace/internal/hrtime"
	"eventspace/internal/pastset"
	"eventspace/internal/vnet"
)

// TestRemoteOverRealTCP runs a PATHS service over the real TCP transport:
// the same wire format the modelled connections use, on an actual network
// stack with Nagle disabled — the substrate the paper's stubs and
// communication threads run on.
func TestRemoteOverRealTCP(t *testing.T) {
	old := hrtime.Scale()
	hrtime.SetScale(0.01)
	t.Cleanup(func() { hrtime.SetScale(old) })
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	serverHost, err := n.AddStandaloneHost("srv", 2)
	if err != nil {
		t.Fatal(err)
	}
	clientHost, err := n.AddStandaloneHost("cli", 2)
	if err != nil {
		t.Fatal(err)
	}

	// The service terminates paths in a PastSet element on the server.
	elem := pastset.MustNewElement("remote-values", 64)
	svc := NewService()
	target := svc.Register(NewValueStore("store", serverHost, elem))

	srv, err := vnet.ListenTCP("127.0.0.1:0", svc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	caller, err := vnet.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	stub := NewRemote("tcp-stub", clientHost, caller, target)

	for i := int64(0); i < 20; i++ {
		rep, err := stub.Op(&Ctx{Thread: "t0"}, Request{Kind: OpWrite, Value: i})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Value != i {
			t.Fatalf("echo = %d, want %d", rep.Value, i)
		}
	}
	if st := elem.Stats(); st.Written != 20 {
		t.Fatalf("element has %d writes", st.Written)
	}
	// Reads travel the same path.
	rep, err := stub.Op(&Ctx{Thread: "t0"}, Request{Kind: OpRead})
	if err != nil || rep.Value != 19 {
		t.Fatalf("remote read = %+v, %v", rep, err)
	}
}

// TestAllreduceOverRealTCP joins two contributor processes' worth of
// traffic through a real TCP connection into one allreduce wrapper.
func TestAllreduceOverRealTCP(t *testing.T) {
	old := hrtime.Scale()
	hrtime.SetScale(0.01)
	t.Cleanup(func() { hrtime.SetScale(old) })
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	rootHost, _ := n.AddStandaloneHost("root", 2)
	leafHost, _ := n.AddStandaloneHost("leaf", 2)

	elem := pastset.MustNewElement("result", 64)
	store := NewValueStore("store", rootHost, elem)
	ar, err := NewAllreduce("ar", rootHost, 2, Sum, store)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	target := svc.Register(ar.Port(1))
	srv, err := vnet.ListenTCP("127.0.0.1:0", svc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	caller, err := vnet.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	stub := NewRemote("stub", leafHost, caller, target)

	const rounds = 10
	var wg sync.WaitGroup
	for i, entry := range []Wrapper{ar.Port(0), stub} {
		wg.Add(1)
		go func(i int, entry Wrapper) {
			defer wg.Done()
			ctx := &Ctx{Thread: fmt.Sprintf("t%d", i)}
			for r := 0; r < rounds; r++ {
				rep, err := entry.Op(ctx, Request{Kind: OpWrite, Value: int64(10 * (i + 1))})
				if err != nil {
					t.Errorf("round %d: %v", r, err)
					return
				}
				if rep.Value != 30 {
					t.Errorf("round %d: sum = %d", r, rep.Value)
					return
				}
			}
		}(i, entry)
	}
	wg.Wait()
	if st := elem.Stats(); st.Written != rounds {
		t.Fatalf("stored %d results", st.Written)
	}
}
