package paths

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/pastset"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// Gather reads from several child paths, concatenates their payloads and
// returns one large tuple (section 4.2). The children are typically
// BatchReaders over trace buffers, possibly behind Remote stubs on other
// hosts.
//
// With helpers == 0 the children are read sequentially in the calling
// thread's context. With helpers > 0 that many helper threads perform the
// reads in parallel — the paper's knob for trading monitoring overhead
// against gather performance (Tables 1-3, "sequential" vs "parallel").
//
// The child set is mutable at runtime (copy-on-write): runtime tree
// repair re-parents children between gathers while pulls are in flight.
// An in-flight gather keeps reading the snapshot it started with; a
// removed child's dead connection surfaces as a transport fault the
// enclosing health guard absorbs.
type Gather struct {
	base
	children atomic.Pointer[[]Wrapper]
	mutMu    sync.Mutex // serializes child-set mutations
	helpers  int
	met      atomic.Pointer[metrics.Op]
}

// NewGather creates a gather wrapper over the given children.
func NewGather(name string, host *vnet.Host, children []Wrapper, helpers int) (*Gather, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("paths: gather %q: no children", name)
	}
	if helpers < 0 {
		return nil, fmt.Errorf("paths: gather %q: helpers %d < 0", name, helpers)
	}
	g := &Gather{base: base{name, host}, helpers: helpers}
	cp := append([]Wrapper(nil), children...)
	g.children.Store(&cp)
	return g, nil
}

// Helpers reports the helper-thread count (0 = sequential gathering).
func (g *Gather) Helpers() int { return g.helpers }

// Children returns the current child snapshot. Callers must not mutate
// the returned slice.
func (g *Gather) Children() []Wrapper { return *g.children.Load() }

// AddChild appends a child to the gather at runtime.
func (g *Gather) AddChild(c Wrapper) {
	g.mutMu.Lock()
	defer g.mutMu.Unlock()
	old := *g.children.Load()
	cp := make([]Wrapper, 0, len(old)+1)
	cp = append(cp, old...)
	cp = append(cp, c)
	g.children.Store(&cp)
}

// RemoveChild removes a child by identity and reports whether it was
// present. A gather may be left empty: an empty gather answers reads
// with an empty reply until children are added back.
func (g *Gather) RemoveChild(c Wrapper) bool {
	g.mutMu.Lock()
	defer g.mutMu.Unlock()
	old := *g.children.Load()
	cp := make([]Wrapper, 0, len(old))
	found := false
	for _, ch := range old {
		if ch == c && !found {
			found = true
			continue
		}
		cp = append(cp, ch)
	}
	if found {
		g.children.Store(&cp)
	}
	return found
}

// ReplaceChild swaps old for new in place (preserving child order) and
// reports whether old was present.
func (g *Gather) ReplaceChild(old, repl Wrapper) bool {
	g.mutMu.Lock()
	defer g.mutMu.Unlock()
	cur := *g.children.Load()
	cp := append([]Wrapper(nil), cur...)
	for i, ch := range cp {
		if ch == old {
			cp[i] = repl
			g.children.Store(&cp)
			return true
		}
	}
	return false
}

// SetMetrics installs the gather's self-metrics site. nil disables.
func (g *Gather) SetMetrics(op *metrics.Op) *Gather {
	g.met.Store(op)
	return g
}

// Op forwards the read to every child and concatenates the replies in
// child order. Ret accumulates the children's record counts.
func (g *Gather) Op(ctx *Ctx, req Request) (Reply, error) {
	m := g.met.Load()
	if m == nil {
		return g.gather(ctx, req)
	}
	start := hrtime.Now()
	rep, err := g.gather(ctx, req)
	m.Record(hrtime.Since(start), len(rep.Data), err)
	return rep, err
}

func (g *Gather) gather(ctx *Ctx, req Request) (Reply, error) {
	if req.Kind != OpRead {
		return Reply{}, fmt.Errorf("paths: %s: unsupported op %v", g.name, req.Kind)
	}
	children := *g.children.Load()
	replies := make([]Reply, len(children))
	errs := make([]error, len(children))
	if g.helpers == 0 {
		for i, c := range children {
			replies[i], errs[i] = c.Op(ctx, req)
		}
	} else {
		sem := vclock.NewSem(g.helpers)
		wg := vclock.NewWaitGroup()
		for i, c := range children {
			i, c := i, c
			wg.Add(1)
			vclock.Go(func() {
				defer wg.Done()
				sem.Acquire()
				defer sem.Release()
				replies[i], errs[i] = c.Op(ctx, req)
			})
		}
		wg.Wait()
	}
	var out Reply
	var buf []byte
	total := 0
	for i := range replies {
		if errs[i] != nil {
			return Reply{}, fmt.Errorf("paths: %s: child %s: %w", g.name, children[i].Name(), errs[i])
		}
		buf = append(buf, replies[i].Data...)
		total += int(replies[i].Ret)
	}
	out.Data = buf
	out.Ret = int16(min(total, 1<<15-1))
	return out, nil
}

// RouteFunc maps a fixed-size record to the PastSet element it should be
// scattered into.
type RouteFunc func(record []byte) (*pastset.Element, error)

// Scatter divides a concatenated payload into fixed-size records and
// writes each to the element chosen by the route function. The front-end
// monitors use it to split a gathered tuple into per-wrapper buffers
// (figure 3).
type Scatter struct {
	base
	recSize int
	route   RouteFunc
}

// NewScatter creates a scatter wrapper for recSize-byte records.
func NewScatter(name string, host *vnet.Host, recSize int, route RouteFunc) (*Scatter, error) {
	if recSize <= 0 {
		return nil, fmt.Errorf("paths: scatter %q: record size %d", name, recSize)
	}
	if route == nil {
		return nil, fmt.Errorf("paths: scatter %q: nil route", name)
	}
	return &Scatter{base: base{name, host}, recSize: recSize, route: route}, nil
}

// Op splits req.Data into records and writes each to its routed element.
// Ret reports the record count.
func (s *Scatter) Op(ctx *Ctx, req Request) (Reply, error) {
	if req.Kind != OpWrite {
		return Reply{}, fmt.Errorf("paths: %s: unsupported op %v", s.name, req.Kind)
	}
	if len(req.Data)%s.recSize != 0 {
		return Reply{}, fmt.Errorf("paths: %s: payload %d bytes not a multiple of record size %d", s.name, len(req.Data), s.recSize)
	}
	n := 0
	for off := 0; off < len(req.Data); off += s.recSize {
		rec := req.Data[off : off+s.recSize]
		elem, err := s.route(rec)
		if err != nil {
			return Reply{}, fmt.Errorf("paths: %s: %w", s.name, err)
		}
		if elem == nil {
			continue // routed to nowhere: filtered out
		}
		// Copy: the element retains the record beyond this call.
		cp := make([]byte, s.recSize)
		copy(cp, rec)
		if _, err := elem.Write(cp); err != nil {
			return Reply{}, fmt.Errorf("paths: %s: %w", s.name, err)
		}
		n++
	}
	return Reply{Ret: int16(min(n, 1<<15-1))}, nil
}
