package paths

//lint:file-allow wallclock asserts real elapsed time against RetryPolicy.Deadline

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"eventspace/internal/vnet"
)

func TestRetryableClassification(t *testing.T) {
	retryable := []error{
		vnet.ErrConnClosed,
		vnet.ErrTimeout,
		vnet.ErrHostDown,
		io.EOF,
		io.ErrUnexpectedEOF,
		fmt.Errorf("wrapped: %w", vnet.ErrConnClosed),
	}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false", err)
		}
	}
	notRetryable := []error{
		nil,
		errors.New("paths: some application failure"),
		&RemoteError{Msg: "division by zero"},
		fmt.Errorf("wrapped: %w", &RemoteError{Msg: "x"}),
	}
	for _, err := range notRetryable {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true", err)
		}
	}
	if !ConnDead(vnet.ErrConnClosed) || !ConnDead(io.EOF) {
		t.Error("dead-connection errors not classified as such")
	}
	if ConnDead(vnet.ErrTimeout) || ConnDead(vnet.ErrHostDown) {
		t.Error("timeout/host-down misclassified as dead connection")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond, JitterSeed: 9}
	q := RetryPolicy{BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond, JitterSeed: 9}
	for a := 1; a <= 10; a++ {
		bp, bq := p.Backoff(a), q.Backoff(a)
		if bp != bq {
			t.Fatalf("attempt %d: %v != %v with equal seeds", a, bp, bq)
		}
		if bp < 50*time.Microsecond || bp > time.Millisecond {
			t.Fatalf("attempt %d: backoff %v out of [base/2, cap]", a, bp)
		}
	}
	if p.Backoff(1) >= p.Backoff(4) {
		t.Fatalf("backoff not growing: %v then %v", p.Backoff(1), p.Backoff(4))
	}
}

// flakyCaller fails the first n calls with err, then succeeds.
type flakyCaller struct {
	n     int
	err   error
	calls int
	reply Reply
}

func (f *flakyCaller) Call(payload []byte) ([]byte, error) {
	f.calls++
	if f.calls <= f.n {
		return nil, f.err
	}
	return encodeReply(f.reply), nil
}

func (f *flakyCaller) Close() error { return nil }

func TestRemoteRetriesTransientFault(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	fc := &flakyCaller{n: 2, err: vnet.ErrTimeout, reply: Reply{Value: 7}}
	r := NewRemote("stub", h, fc, 1).SetRetry(&RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Microsecond})
	rep, err := r.Op(&Ctx{}, Request{Kind: OpRead})
	if err != nil || rep.Value != 7 {
		t.Fatalf("Op = %+v, %v", rep, err)
	}
	if fc.calls != 3 {
		t.Fatalf("calls = %d, want 3", fc.calls)
	}
	if r.Retries() != 2 {
		t.Fatalf("Retries = %d, want 2", r.Retries())
	}
}

func TestRemoteExhaustsAttempts(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	fc := &flakyCaller{n: 100, err: vnet.ErrTimeout}
	r := NewRemote("stub", h, fc, 1).SetRetry(&RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond})
	if _, err := r.Op(&Ctx{}, Request{Kind: OpRead}); !errors.Is(err, vnet.ErrTimeout) {
		t.Fatalf("Op err = %v", err)
	}
	if fc.calls != 3 {
		t.Fatalf("calls = %d, want 3", fc.calls)
	}
}

func TestRemoteDoesNotRetryAppError(t *testing.T) {
	n, c1, _ := testNet(t)
	client, server := c1.Hosts()[0], c1.Hosts()[1]
	calls := 0
	failing := NewFunc("boom", server, func(ctx *Ctx, req Request) (Reply, error) {
		calls++
		return Reply{}, errors.New("application failure")
	})
	svc := NewService()
	target := svc.Register(failing)
	conn := n.Dial(client, server, svc.Handler())
	defer conn.Close()
	r := NewRemote("stub", client, conn, target).SetRetry(&RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Microsecond})
	_, err := r.Op(&Ctx{}, Request{Kind: OpRead})
	if !IsRemote(err) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if Retryable(err) {
		t.Fatal("application error classified retryable")
	}
	if calls != 1 {
		t.Fatalf("remote op ran %d times, want 1", calls)
	}
}

func TestRemoteRedialsDeadConn(t *testing.T) {
	n, c1, _ := testNet(t)
	client, server := c1.Hosts()[0], c1.Hosts()[1]
	echo := NewFunc("echo", server, func(ctx *Ctx, req Request) (Reply, error) {
		return Reply{Value: req.Value}, nil
	})
	svc := NewService()
	target := svc.Register(echo)
	conn := n.Dial(client, server, svc.Handler())
	conn.Close() // the stub starts with a dead connection
	r := NewRemote("stub", client, conn, target).
		SetRetry(&RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond}).
		SetRedial(func(stale vnet.Caller) (vnet.Caller, uint32, error) {
			if stale != vnet.Caller(conn) {
				t.Errorf("redial got stale caller %v, want the original conn", stale)
			}
			return n.Dial(client, server, svc.Handler()), target, nil
		})
	rep, err := r.Op(&Ctx{}, Request{Kind: OpWrite, Value: 5})
	if err != nil || rep.Value != 5 {
		t.Fatalf("Op = %+v, %v", rep, err)
	}
	if r.Reconnects() != 1 {
		t.Fatalf("Reconnects = %d, want 1", r.Reconnects())
	}
	r.Close()
}

// deadCaller always fails with a dead-connection fault.
type deadCaller struct{ calls int }

func (d *deadCaller) Call(payload []byte) ([]byte, error) {
	d.calls++
	return nil, vnet.ErrConnClosed
}

func (d *deadCaller) Close() error { return nil }

// TestRedialRespectsDeadline is the regression test for the
// retry/redial interaction: a redial that hands back a caller which
// immediately faults again must still respect RetryPolicy.Deadline —
// the reconnect path must not reset the attempt budget — and the
// Retries/Reconnects counters must stay coherent (one reconnect per
// dead-connection retry, never more retries than backoffs slept).
func TestRedialRespectsDeadline(t *testing.T) {
	_, c1, _ := testNet(t)
	h := c1.Hosts()[0]
	var redials int
	r := NewRemote("stub", h, &deadCaller{}, 1).
		SetRetry(&RetryPolicy{
			MaxAttempts: 1000, // deadline, not attempts, must stop the loop
			BaseBackoff: 200 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			Deadline:    3 * time.Millisecond,
		}).
		SetRedial(func(stale vnet.Caller) (vnet.Caller, uint32, error) {
			redials++
			return &deadCaller{}, 1, nil
		})
	start := time.Now()
	_, err := r.Op(&Ctx{}, Request{Kind: OpRead})
	elapsed := time.Since(start)
	if !errors.Is(err, vnet.ErrConnClosed) {
		t.Fatalf("err = %v, want ErrConnClosed", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline ignored: Op ran %v", elapsed)
	}
	if r.Retries() == 0 {
		t.Fatal("no retries before the deadline")
	}
	if r.Retries() >= 999 {
		t.Fatalf("retries = %d: the deadline did not bound the loop", r.Retries())
	}
	if got, want := r.Reconnects(), uint64(redials); got != want {
		t.Fatalf("Reconnects = %d, redial func ran %d times", got, want)
	}
	// Every retry of a dead connection redials: the counters move in
	// lockstep.
	if r.Reconnects() != r.Retries() {
		t.Fatalf("Reconnects = %d, Retries = %d: counters incoherent", r.Reconnects(), r.Retries())
	}
}

func TestServiceHandlerEncodesAppErrors(t *testing.T) {
	_, c1, _ := testNet(t)
	server := c1.Hosts()[0]
	failing := NewFunc("boom", server, func(ctx *Ctx, req Request) (Reply, error) {
		return Reply{}, errors.New("deliberate")
	})
	svc := NewService()
	target := svc.Register(failing)
	h := svc.Handler()

	// A wrapper error comes back as a frame, not a handler error.
	frame, err := h(encodeRequest(target, &Ctx{}, Request{Kind: OpRead}))
	if err != nil {
		t.Fatalf("handler returned transport-level error: %v", err)
	}
	if _, err := decodeReply(frame); !IsRemote(err) {
		t.Fatalf("decoded err = %v, want RemoteError", err)
	}

	// Unknown target and malformed request frames too.
	frame, err = h(encodeRequest(999, &Ctx{}, Request{Kind: OpRead}))
	if err != nil {
		t.Fatalf("unknown target: handler err %v", err)
	}
	if _, err := decodeReply(frame); !IsRemote(err) {
		t.Fatalf("unknown target decoded err = %v", err)
	}
	frame, err = h([]byte{1, 2, 3})
	if err != nil {
		t.Fatalf("malformed request: handler err %v", err)
	}
	if _, err := decodeReply(frame); !IsRemote(err) {
		t.Fatalf("malformed request decoded err = %v", err)
	}
}
