package paths

import (
	"encoding/binary"
	"fmt"
	"sync"

	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// Exchange is the all-to-all wrapper used between clusters on WAN
// multi-clusters (section 5: "the inter-cluster allreduce is replaced by
// an all-to-all for improved performance, as in MagPIe"). Each cluster's
// root participates in the exchange: per round it sends its cluster's
// combined value to every peer in parallel, waits for all peers' values,
// and reduces locally — one WAN latency instead of two tree traversals.
//
// Wiring: create one Exchange per participant, register each with its
// host's Service via RegisterExchangeTarget, then connect every pair with
// stubs through ConnectPeer. Each participant must be driven by a single
// thread issuing one operation per round, in lockstep with its peers.
type Exchange struct {
	base
	id     int
	k      int
	reduce ReduceFunc
	next   Wrapper // optional: receives the reduced value each round

	peerMu sync.RWMutex
	peers  map[int]Wrapper // stubs to remote deposit targets

	mu     sync.Mutex
	cond   *vclock.Cond
	round  uint64
	rounds map[uint64]*exchangeRound
}

type exchangeRound struct {
	n   int
	acc int64
}

// NewExchange creates participant id of k in an all-to-all exchange.
func NewExchange(name string, host *vnet.Host, id, k int, reduce ReduceFunc, next Wrapper) (*Exchange, error) {
	if k < 1 || id < 0 || id >= k {
		return nil, fmt.Errorf("paths: exchange %q: id %d of %d invalid", name, id, k)
	}
	if reduce == nil {
		return nil, fmt.Errorf("paths: exchange %q: nil reduce func", name)
	}
	e := &Exchange{
		base:   base{name, host},
		id:     id,
		k:      k,
		reduce: reduce,
		next:   next,
		peers:  make(map[int]Wrapper),
		rounds: make(map[uint64]*exchangeRound),
	}
	e.cond = vclock.NewCond(&e.mu)
	return e, nil
}

// ID returns this participant's index.
func (e *Exchange) ID() int { return e.id }

// Participants returns the exchange size k.
func (e *Exchange) Participants() int { return e.k }

// ConnectPeer installs the stub used to deposit values at peer id.
func (e *Exchange) ConnectPeer(id int, stub Wrapper) error {
	if id == e.id || id < 0 || id >= e.k {
		return fmt.Errorf("paths: exchange %s: bad peer id %d", e.name, id)
	}
	e.peerMu.Lock()
	defer e.peerMu.Unlock()
	e.peers[id] = stub
	return nil
}

// RegisterExchangeTarget registers e's deposit endpoint with svc and
// returns the target id peers should address their stubs to.
func RegisterExchangeTarget(svc *Service, e *Exchange) uint32 {
	return svc.Register(&exchangeTarget{
		base: base{e.name + ".deposit", e.host},
		ex:   e,
	})
}

// exchangeTarget is the service-side endpoint receiving peer deposits.
type exchangeTarget struct {
	base
	ex *Exchange
}

func (t *exchangeTarget) Op(ctx *Ctx, req Request) (Reply, error) {
	if len(req.Data) != 12 {
		return Reply{}, fmt.Errorf("paths: %s: bad deposit frame (%d bytes)", t.name, len(req.Data))
	}
	round := binary.LittleEndian.Uint64(req.Data[:8])
	from := int(int32(binary.LittleEndian.Uint32(req.Data[8:12])))
	t.ex.deposit(from, round, req.Value)
	return Reply{}, nil
}

// deposit records a peer's (or our own) value for a round.
func (e *Exchange) deposit(from int, round uint64, v int64) {
	e.mu.Lock()
	st := e.rounds[round]
	if st == nil {
		st = &exchangeRound{}
		e.rounds[round] = st
	}
	if st.n == 0 {
		st.acc = v
	} else {
		st.acc = e.reduce(st.acc, v)
	}
	st.n++
	if st.n == e.k {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	_ = from
}

// Op runs one exchange round with the caller's contribution.
func (e *Exchange) Op(ctx *Ctx, req Request) (Reply, error) {
	e.mu.Lock()
	round := e.round
	e.round++
	e.mu.Unlock()

	e.peerMu.RLock()
	if len(e.peers) != e.k-1 {
		n := len(e.peers)
		e.peerMu.RUnlock()
		return Reply{}, fmt.Errorf("paths: exchange %s: %d of %d peers connected", e.name, n, e.k-1)
	}
	stubs := make([]Wrapper, 0, e.k-1)
	for _, s := range e.peers {
		stubs = append(stubs, s)
	}
	e.peerMu.RUnlock()

	e.deposit(e.id, round, req.Value)

	// Send to all peers in parallel; the WAN latencies overlap.
	frame := make([]byte, 12)
	binary.LittleEndian.PutUint64(frame[:8], round)
	binary.LittleEndian.PutUint32(frame[8:12], uint32(int32(e.id)))
	var sendMu sync.Mutex
	var sendErr error
	wg := vclock.NewWaitGroup()
	for _, s := range stubs {
		s := s
		wg.Add(1)
		vclock.Go(func() {
			defer wg.Done()
			if _, err := s.Op(ctx, Request{Kind: OpWrite, Value: req.Value, Data: frame}); err != nil {
				sendMu.Lock()
				if sendErr == nil {
					sendErr = err
				}
				sendMu.Unlock()
			}
		})
	}
	wg.Wait()
	if sendErr != nil {
		return Reply{}, fmt.Errorf("paths: exchange %s: %w", e.name, sendErr)
	}

	e.mu.Lock()
	for e.rounds[round].n < e.k {
		e.cond.Wait()
	}
	acc := e.rounds[round].acc
	delete(e.rounds, round)
	e.mu.Unlock()

	if e.next != nil {
		if _, err := e.next.Op(ctx, Request{Kind: OpWrite, Value: acc}); err != nil {
			return Reply{}, err
		}
	}
	return Reply{Value: acc}, nil
}
