package paths

import (
	"fmt"
	"sync"

	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// ReduceFunc combines two contributions. It must be associative and
// commutative (the tree applies it in arrival order).
type ReduceFunc func(a, b int64) int64

// Sum is the global-sum reduction used by the paper's gsum benchmark.
func Sum(a, b int64) int64 { return a + b }

// Max reduction.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Min reduction.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// CollectiveNotifier receives the synchronization-phase events the
// coscheduling controller keys off (section 4.1, "Coscheduling"). AllSent
// fires on a host once every local contributor has arrived and the
// combined value has been sent towards the next level; AllReleased fires
// once every local contributor has been unblocked by the broadcast.
type CollectiveNotifier interface {
	AllSent(host *vnet.Host)
	AllReleased(host *vnet.Host)
}

// Allreduce is the synchronizing collective wrapper of figure 1. It joins
// n contributor paths: each contributor's operation blocks until all n
// have arrived; the last arrival carries the combined value to the next
// wrapper (towards the root); the value that comes back releases all
// contributors.
//
// Each contributor must use its own Port, and each port must be driven by
// a single thread — the standard allreduce contract (every participant
// calls the operation once per iteration).
type Allreduce struct {
	base
	next     Wrapper
	reduce   ReduceFunc
	n        int
	notifier CollectiveNotifier

	mu      sync.Mutex
	cond    *vclock.Cond
	gen     uint64 // completed rounds
	arrived int
	leaving int // contributors not yet departed from the current round
	acc     int64
	result  int64
	resErr  error
}

// NewAllreduce creates an allreduce wrapper on host joining n contributor
// ports, combining with reduce, and forwarding the combined value to next.
func NewAllreduce(name string, host *vnet.Host, n int, reduce ReduceFunc, next Wrapper) (*Allreduce, error) {
	if n < 1 {
		return nil, fmt.Errorf("paths: allreduce %q: n %d < 1", name, n)
	}
	if next == nil {
		return nil, fmt.Errorf("paths: allreduce %q: %w", name, ErrNoNext)
	}
	if reduce == nil {
		return nil, fmt.Errorf("paths: allreduce %q: nil reduce func", name)
	}
	a := &Allreduce{base: base{name, host}, next: next, reduce: reduce, n: n}
	a.cond = vclock.NewCond(&a.mu)
	return a, nil
}

// SetNotifier installs the coscheduling notifier. Must be called before
// the wrapper is used.
func (a *Allreduce) SetNotifier(n CollectiveNotifier) { a.notifier = n }

// Fanin returns the number of contributor ports.
func (a *Allreduce) Fanin() int { return a.n }

// Next returns the upstream wrapper (towards the root).
func (a *Allreduce) Next() Wrapper { return a.next }

// Rounds reports the number of completed allreduce rounds.
func (a *Allreduce) Rounds() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen
}

// Op contributes directly to the wrapper. Most callers should go through
// a Port so instrumentation can distinguish contributors; Op itself is the
// shared synchronization point.
func (a *Allreduce) Op(ctx *Ctx, req Request) (Reply, error) {
	a.mu.Lock()
	g := a.gen
	if a.arrived == 0 {
		a.acc = req.Value
	} else {
		a.acc = a.reduce(a.acc, req.Value)
	}
	a.arrived++
	if a.arrived == a.n {
		// Last arrival: carry the combined value towards the root in
		// this thread's context while the others wait.
		up := Request{Kind: req.Kind, Value: a.acc}
		a.mu.Unlock()
		if a.notifier != nil {
			// The combined value is on its way to the next level;
			// coscheduling strategy 1 opens its window here.
			a.notifier.AllSent(a.host)
		}
		rep, err := a.next.Op(ctx, up)
		a.mu.Lock()
		a.result, a.resErr = rep.Value, err
		a.arrived = 0
		a.leaving = a.n
		a.gen++
		a.cond.Broadcast()
		a.mu.Unlock()
		a.depart()
		if err != nil {
			return Reply{}, err
		}
		return Reply{Value: rep.Value}, nil
	}
	for a.gen == g {
		a.cond.Wait()
	}
	res, err := a.result, a.resErr
	a.mu.Unlock()
	a.depart()
	if err != nil {
		return Reply{}, err
	}
	return Reply{Value: res}, nil
}

// depart marks one contributor as unblocked; the last departure fires the
// strategy-2 coscheduling event ("analysis threads are blocked until all
// participating threads are unblocked").
func (a *Allreduce) depart() {
	a.mu.Lock()
	a.leaving--
	fire := a.leaving == 0
	a.mu.Unlock()
	if fire && a.notifier != nil {
		a.notifier.AllReleased(a.host)
	}
}

// Port returns the contributor-i entry wrapper. Ports carry a contributor
// label so event collectors placed on them record per-contributor
// timestamps (the paper's EC1..EC8 in figure 1).
func (a *Allreduce) Port(i int) Wrapper {
	return &arPort{
		base: base{fmt.Sprintf("%s.port%d", a.name, i), a.host},
		ar:   a,
	}
}

type arPort struct {
	base
	ar *Allreduce
}

func (p *arPort) Op(ctx *Ctx, req Request) (Reply, error) { return p.ar.Op(ctx, req) }

// Barrier returns an Allreduce configured as a pure synchronization
// barrier (reduction ignored, value zero), terminating in the given next
// wrapper. It exists because other synchronizing collectives "will have
// similar metrics" (section 3) and gives tests a second collective.
func Barrier(name string, host *vnet.Host, n int, next Wrapper) (*Allreduce, error) {
	return NewAllreduce(name, host, n, func(a, b int64) int64 { return 0 }, next)
}
