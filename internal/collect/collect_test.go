package collect

import (
	"errors"
	"testing"
	"testing/quick"

	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

func testHost(t *testing.T) *vnet.Host {
	t.Helper()
	old := hrtime.Scale()
	hrtime.SetScale(0.01)
	t.Cleanup(func() { hrtime.SetScale(old) })
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	h, err := n.AddStandaloneHost("h", 2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTupleCodecRoundTrip(t *testing.T) {
	in := TraceTuple{ECID: 7, Op: paths.OpWrite, Ret: -3, Seq: 12345, Start: 1111, End: 2222}
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestQuickTupleCodec(t *testing.T) {
	f := func(id uint32, op uint16, ret int16, seq uint32, start, end int64) bool {
		in := TraceTuple{ECID: id, Op: paths.OpKind(op), Ret: ret, Seq: seq, Start: start, End: end}
		out, err := Decode(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, TupleSize-1)); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestDecodeAll(t *testing.T) {
	a := TraceTuple{ECID: 1, Seq: 0}
	b := TraceTuple{ECID: 2, Seq: 1}
	buf := append(a.Encode(), b.Encode()...)
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("DecodeAll = %+v", got)
	}
	if _, err := DecodeAll(buf[:30]); err == nil {
		t.Fatal("ragged payload accepted")
	}
	if got, err := DecodeAll(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty payload: %v %v", got, err)
	}
}

func TestDecodeAllPartial(t *testing.T) {
	a := TraceTuple{ECID: 1, Seq: 0}
	b := TraceTuple{ECID: 2, Seq: 1}
	whole := append(a.Encode(), b.Encode()...)
	cases := []struct {
		name      string
		buf       []byte
		wantN     int
		wantOff   int
		wantRem   int
		wantWhole []TraceTuple
	}{
		{name: "one byte", buf: whole[:1], wantN: 0, wantOff: 0, wantRem: 1},
		{name: "almost one tuple", buf: whole[:TupleSize-1], wantN: 0, wantOff: 0, wantRem: TupleSize - 1},
		{name: "one and a bit", buf: whole[:TupleSize+5], wantN: 1, wantOff: TupleSize, wantRem: 5,
			wantWhole: []TraceTuple{a}},
		{name: "two minus one byte", buf: whole[:2*TupleSize-1], wantN: 1, wantOff: TupleSize, wantRem: TupleSize - 1,
			wantWhole: []TraceTuple{a}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeAll(tc.buf)
			var pe *PartialTupleError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *PartialTupleError", err)
			}
			if pe.Offset != tc.wantOff || pe.Remaining != tc.wantRem {
				t.Fatalf("offset/remaining = %d/%d, want %d/%d", pe.Offset, pe.Remaining, tc.wantOff, tc.wantRem)
			}
			if len(got) != tc.wantN {
				t.Fatalf("prefix length = %d, want %d", len(got), tc.wantN)
			}
			for i, want := range tc.wantWhole {
				if got[i] != want {
					t.Fatalf("prefix[%d] = %+v, want %+v", i, got[i], want)
				}
			}
		})
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleGeneric:     "generic",
		RoleContributor: "contributor",
		RoleCollective:  "collective",
		RoleStubClient:  "stub-client",
		RoleStubServer:  "stub-server",
		Role(42):        "role(42)",
	} {
		if r.String() != want {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestCollectorRecordsTuples(t *testing.T) {
	h := testHost(t)
	reg := NewRegistry()
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{Value: req.Value, Ret: 9}, nil
	})
	ec, err := reg.New("ec1", h, Meta{Role: RoleContributor, Tree: "T", Node: "ar0", Contributor: 2}, inner, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rep, err := ec.Op(&paths.Ctx{Thread: "t"}, paths.Request{Kind: paths.OpWrite, Value: int64(i)})
		if err != nil || rep.Value != int64(i) {
			t.Fatalf("op %d: %+v %v", i, rep, err)
		}
	}
	if ec.Buffer().Stats().Written != 5 {
		t.Fatalf("recorded %d tuples", ec.Buffer().Stats().Written)
	}
	c := ec.Buffer().NewCursor()
	for i := 0; i < 5; i++ {
		raw, err := c.TryNext()
		if err != nil {
			t.Fatal(err)
		}
		tu, err := Decode(raw.Data)
		if err != nil {
			t.Fatal(err)
		}
		if tu.ECID != ec.ID() || tu.Seq != uint32(i) || tu.Op != paths.OpWrite || tu.Ret != 9 {
			t.Fatalf("tuple %d = %+v", i, tu)
		}
		if tu.End < tu.Start {
			t.Fatalf("tuple %d: end %d < start %d", i, tu.End, tu.Start)
		}
	}
	if ec.Meta().Contributor != 2 || ec.Meta().Tree != "T" {
		t.Fatalf("meta = %+v", ec.Meta())
	}
}

func TestCollectorRecordsErrors(t *testing.T) {
	h := testHost(t)
	reg := NewRegistry()
	inner := paths.NewFunc("fail", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{}, errors.New("boom")
	})
	ec, err := reg.New("ec", h, Meta{}, inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ec.Op(nil, paths.Request{Kind: paths.OpRead}); err == nil {
		t.Fatal("error swallowed")
	}
	raw, _ := ec.Buffer().Latest()
	tu, _ := Decode(raw.Data)
	if tu.Ret != -1 {
		t.Fatalf("error tuple Ret = %d, want -1", tu.Ret)
	}
	if tu.Op != paths.OpRead {
		t.Fatalf("error tuple Op = %v", tu.Op)
	}
}

func TestCollectorDisable(t *testing.T) {
	h := testHost(t)
	reg := NewRegistry()
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{}, nil
	})
	ec, _ := reg.New("ec", h, Meta{}, inner, 4)
	ec.SetEnabled(false)
	for i := 0; i < 3; i++ {
		if _, err := ec.Op(nil, paths.Request{Kind: paths.OpWrite}); err != nil {
			t.Fatal(err)
		}
	}
	if ec.Buffer().Stats().Written != 0 {
		t.Fatal("disabled collector recorded tuples")
	}
	ec.SetEnabled(true)
	ec.Op(nil, paths.Request{Kind: paths.OpWrite})
	if ec.Buffer().Stats().Written != 1 {
		t.Fatal("re-enabled collector did not record")
	}
}

func TestCollectorClosedBufferDoesNotFailOp(t *testing.T) {
	h := testHost(t)
	reg := NewRegistry()
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{Value: 1}, nil
	})
	ec, _ := reg.New("ec", h, Meta{}, inner, 4)
	ec.Buffer().Close()
	rep, err := ec.Op(nil, paths.Request{Kind: paths.OpWrite})
	if err != nil || rep.Value != 1 {
		t.Fatalf("op through closed buffer: %+v %v", rep, err)
	}
}

func TestRegistryLookupAndEnumeration(t *testing.T) {
	h := testHost(t)
	reg := NewRegistry()
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{}, nil
	})
	var ids []uint32
	for i := 0; i < 4; i++ {
		ec, err := reg.New("ec"+string(rune('a'+i)), h, Meta{}, inner, 4)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ec.ID())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not increasing: %v", ids)
		}
	}
	if _, ok := reg.ByID(ids[2]); !ok {
		t.Fatal("ByID missed a collector")
	}
	if _, ok := reg.ByID(9999); ok {
		t.Fatal("ByID found a ghost")
	}
	if got := reg.All(); len(got) != 4 {
		t.Fatalf("All() = %d collectors", len(got))
	}
	if got := reg.OnHost(h); len(got) != 4 {
		t.Fatalf("OnHost = %d collectors", len(got))
	}
	reg.SetAllEnabled(false)
	for _, ec := range reg.All() {
		ec.Op(nil, paths.Request{Kind: paths.OpWrite})
		if ec.Buffer().Stats().Written != 0 {
			t.Fatal("SetAllEnabled(false) did not disable")
		}
	}
}

func TestRegistryRejectsNilNextAndDupBuffer(t *testing.T) {
	h := testHost(t)
	reg := NewRegistry()
	if _, err := reg.New("x", h, Meta{}, nil, 4); err == nil {
		t.Fatal("nil next accepted")
	}
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{}, nil
	})
	if _, err := reg.New("dup", h, Meta{}, inner, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.New("dup", h, Meta{}, inner, 4); err == nil {
		t.Fatal("duplicate collector name on one host accepted")
	}
}

// TestCollectorWritePathZeroAlloc is the allocation regression gate for
// the recording hot path (ISSUE 7): an enabled collector's Op — encode,
// buffer write, ring overwrite — must not allocate, with or without the
// self-metrics site attached. The CI bench gate checks the same property
// through -benchmem; this test makes plain `go test` fail on a
// regression too.
func TestCollectorWritePathZeroAlloc(t *testing.T) {
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	h, _ := n.AddStandaloneHost("bench", 2)
	reg := NewRegistry()
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{}, nil
	})
	// A small buffer forces ring overwrites inside the measured loop, so
	// the steady overwrite path is covered, not just the filling phase.
	ec, err := reg.New("ec", h, Meta{}, inner, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &paths.Ctx{Thread: "bench"}
	req := paths.Request{Kind: paths.OpWrite, Value: 1}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := ec.Op(ctx, req); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("collector write path allocates %.2f allocs/op, want 0", avg)
	}
	reg.UseMetrics(metrics.New())
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := ec.Op(ctx, req); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("collector write path with metrics allocates %.2f allocs/op, want 0", avg)
	}
}

func TestDecodeAppendReusesCapacity(t *testing.T) {
	a := TraceTuple{ECID: 1, Seq: 0, Start: 10, End: 20}
	b := TraceTuple{ECID: 2, Seq: 1, Start: 30, End: 40}
	buf := append(a.Encode(), b.Encode()...)
	batch, err := DecodeAppend(nil, buf)
	if err != nil || len(batch) != 2 || batch[0] != a || batch[1] != b {
		t.Fatalf("DecodeAppend = %+v, %v", batch, err)
	}
	// Reusing the batch must not allocate once capacity has grown.
	if avg := testing.AllocsPerRun(100, func() {
		var err error
		batch, err = DecodeAppend(batch[:0], buf)
		if err != nil || len(batch) != 2 {
			t.Fatalf("DecodeAppend reuse = %+v, %v", batch, err)
		}
	}); avg != 0 {
		t.Fatalf("DecodeAppend with warm batch allocates %.2f allocs/op", avg)
	}
	// A partial tail still appends the whole prefix.
	batch, err = DecodeAppend(batch[:0], buf[:TupleSize+5])
	var pe *PartialTupleError
	if !errors.As(err, &pe) || len(batch) != 1 || batch[0] != a {
		t.Fatalf("partial DecodeAppend = %+v, %v", batch, err)
	}
}

// BenchmarkEventCollectorWrite measures the real cost an event collector
// adds to a PastSet operation — the paper's 1.1 µs figure (section 6.1).
func BenchmarkEventCollectorWrite(b *testing.B) {
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	h, _ := n.AddStandaloneHost("bench", 2)
	reg := NewRegistry()
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{}, nil
	})
	ec, _ := reg.New("ec", h, Meta{}, inner, 3750)
	ctx := &paths.Ctx{Thread: "bench"}
	req := paths.Request{Kind: paths.OpWrite, Value: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec.Op(ctx, req)
	}
}

// BenchmarkEventCollectorWriteWithMetrics measures the same write with
// the self-metrics site attached — the cost of monitoring the monitor.
func BenchmarkEventCollectorWriteWithMetrics(b *testing.B) {
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	h, _ := n.AddStandaloneHost("bench", 2)
	reg := NewRegistry()
	reg.UseMetrics(metrics.New())
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{}, nil
	})
	ec, _ := reg.New("ec", h, Meta{}, inner, 3750)
	ctx := &paths.Ctx{Thread: "bench"}
	req := paths.Request{Kind: paths.OpWrite, Value: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec.Op(ctx, req)
	}
}

func TestCollectorSelfMetrics(t *testing.T) {
	h := testHost(t)
	reg := NewRegistry()
	mr := metrics.New()
	reg.UseMetrics(mr)
	inner := paths.NewFunc("inner", h, func(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
		return paths.Reply{}, nil
	})
	ec, err := reg.New("ec-met", h, Meta{}, inner, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ec.Op(&paths.Ctx{}, paths.Request{Kind: paths.OpWrite}); err != nil {
			t.Fatal(err)
		}
	}
	snap := mr.Snapshot()
	sites := snap.ByKind(metrics.KindCollector)
	if len(sites) != 1 || sites[0].Name != "ec-met" {
		t.Fatalf("collector sites = %+v", sites)
	}
	if sites[0].Ops != 3 || sites[0].Lat.Count != 3 || sites[0].Bytes != 3*TupleSize {
		t.Fatalf("site = %+v, want 3 writes of %d bytes", sites[0], TupleSize)
	}
	// UseMetrics also wires collectors that already exist, and nil
	// detaches them.
	reg2 := NewRegistry()
	ec2, err := reg2.New("ec-late", h, Meta{}, inner, 16)
	if err != nil {
		t.Fatal(err)
	}
	mr2 := metrics.New()
	reg2.UseMetrics(mr2)
	if _, err := ec2.Op(&paths.Ctx{}, paths.Request{Kind: paths.OpWrite}); err != nil {
		t.Fatal(err)
	}
	if got := mr2.Snapshot().ByKind(metrics.KindCollector); len(got) != 1 || got[0].Ops != 1 {
		t.Fatalf("late-wired collector sites = %+v", got)
	}
	reg2.UseMetrics(nil)
	if _, err := ec2.Op(&paths.Ctx{}, paths.Request{Kind: paths.OpWrite}); err != nil {
		t.Fatal(err)
	}
	if got := mr2.Snapshot().ByKind(metrics.KindCollector); got[0].Ops != 1 {
		t.Fatalf("detached collector still recorded: %+v", got)
	}
}
