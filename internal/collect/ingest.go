// Bounded ingest queues. A monitor's gather thread should never block on
// the monitor's own analysis falling behind: under overload the right
// failure mode is to shed the *oldest* undigested batch (its information
// is the most stale) and keep pulling, not to stall the event-scope tree.
// IngestQueue is that buffer: a fixed ring of gathered batches with
// shed-oldest backpressure, atomic shed accounting, and a summary-only
// mode — the lowest rung of the degradation ladder — that folds incoming
// batches into aggregate counts without retaining payloads at all.
//
// Both hot paths (Push with shed, Pop) are allocation-free: the ring is
// preallocated and the counters are atomics, so an overloaded monitor
// sheds without adding garbage-collection pressure to the host it is
// trying to protect.
package collect

import (
	"sync"
	"sync/atomic"

	"eventspace/internal/metrics"
)

// DefaultIngestCap is the ring capacity used when a queue is created
// with a non-positive capacity: enough batches to ride out a transient
// analysis stall at typical pull intervals without unbounded growth.
const DefaultIngestCap = 64

// IngestStats is a point-in-time snapshot of an ingest queue's
// accounting.
type IngestStats struct {
	Pushed     uint64 // batches offered to the queue
	Popped     uint64 // batches handed to the drainer
	Queued     int    // batches currently retained
	ShedBatches uint64 // batches dropped by shed-oldest backpressure
	ShedTuples  uint64 // whole trace tuples inside shed batches
	ShedBytes   uint64 // payload bytes inside shed batches
	SummarizedBatches uint64 // batches folded away in summary-only mode
	SummarizedTuples  uint64 // whole trace tuples summarized away
	SummarizedBytes   uint64 // payload bytes summarized away
}

// IngestQueue is a bounded ring of gathered batches with shed-oldest
// backpressure. It is safe for one or more producers and consumers.
type IngestQueue struct {
	mu   sync.Mutex
	buf  [][]byte // preallocated ring
	head int      // index of the oldest retained batch
	n    int      // retained batches

	summary atomic.Bool

	pushed atomic.Uint64
	popped atomic.Uint64

	shedBatches atomic.Uint64
	shedTuples  atomic.Uint64
	shedBytes   atomic.Uint64

	sumBatches atomic.Uint64
	sumTuples  atomic.Uint64
	sumBytes   atomic.Uint64

	// Optional self-metrics counters (nil-safe).
	cShedBatches *metrics.Counter
	cShedTuples  *metrics.Counter
}

// NewIngestQueue creates a queue retaining at most capBatches gathered
// batches (DefaultIngestCap when non-positive).
func NewIngestQueue(capBatches int) *IngestQueue {
	if capBatches <= 0 {
		capBatches = DefaultIngestCap
	}
	return &IngestQueue{buf: make([][]byte, capBatches)}
}

// SetMetrics wires the queue's shed accounting into self-metrics
// counters (nil-safe; nil detaches).
func (q *IngestQueue) SetMetrics(shedBatches, shedTuples *metrics.Counter) {
	q.mu.Lock()
	q.cShedBatches, q.cShedTuples = shedBatches, shedTuples
	q.mu.Unlock()
}

// SetSummaryOnly flips summary-only mode: when on, Push folds batches
// into the summarized counters and retains nothing (already-queued
// batches stay queued for the drainer).
func (q *IngestQueue) SetSummaryOnly(on bool) { q.summary.Store(on) }

// SummaryOnly reports whether summary-only mode is active.
func (q *IngestQueue) SummaryOnly() bool { return q.summary.Load() }

// Cap returns the ring capacity in batches.
func (q *IngestQueue) Cap() int { return len(q.buf) }

// Len returns the number of batches currently retained.
func (q *IngestQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Push offers one gathered batch. When the ring is full the oldest
// retained batch is shed to make room — the monitor keeps the freshest
// data under overload. In summary-only mode the batch is counted and
// dropped without being retained. Push never blocks and never fails;
// empty batches are ignored.
func (q *IngestQueue) Push(data []byte) {
	if len(data) == 0 {
		return
	}
	q.pushed.Add(1)
	if q.summary.Load() {
		q.sumBatches.Add(1)
		q.sumTuples.Add(uint64(len(data) / TupleSize))
		q.sumBytes.Add(uint64(len(data)))
		return
	}
	q.mu.Lock()
	if q.n == len(q.buf) {
		// Shed the oldest batch. The counters are atomics, so updating
		// them under the ring mutex costs nothing extra and keeps the
		// shed-then-insert step indivisible for concurrent producers.
		old := q.buf[q.head]
		q.buf[q.head] = nil
		q.head++
		if q.head == len(q.buf) {
			q.head = 0
		}
		q.n--
		q.shedBatches.Add(1)
		q.shedTuples.Add(uint64(len(old) / TupleSize))
		q.shedBytes.Add(uint64(len(old)))
		q.cShedBatches.Inc()
		q.cShedTuples.Add(uint64(len(old) / TupleSize))
	}
	tail := q.head + q.n
	if tail >= len(q.buf) {
		tail -= len(q.buf)
	}
	q.buf[tail] = data
	q.n++
	q.mu.Unlock()
}

// Pop removes and returns the oldest retained batch, reporting false
// when the queue is empty. It never blocks.
func (q *IngestQueue) Pop() ([]byte, bool) {
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return nil, false
	}
	data := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	q.mu.Unlock()
	q.popped.Add(1)
	return data, true
}

// Stats snapshots the queue's accounting.
func (q *IngestQueue) Stats() IngestStats {
	return IngestStats{
		Pushed:            q.pushed.Load(),
		Popped:            q.popped.Load(),
		Queued:            q.Len(),
		ShedBatches:       q.shedBatches.Load(),
		ShedTuples:        q.shedTuples.Load(),
		ShedBytes:         q.shedBytes.Load(),
		SummarizedBatches: q.sumBatches.Load(),
		SummarizedTuples:  q.sumTuples.Load(),
		SummarizedBytes:   q.sumBytes.Load(),
	}
}
