// Package collect implements EventSpace data collection: event collectors
// and the 28-byte binary trace tuples they record (section 4.2).
//
// An event collector is a PATHS wrapper inserted into a communication
// path. For every operation it records the entry and exit timestamps of
// the next wrapper plus identifying fields, packs them into a 28-byte
// tuple in native byte order, and writes the tuple to a bounded PastSet
// trace buffer with a blocking write (a mutex, a 28-byte memory copy, and
// an unlock). The traced operation is blocked during the write, so the
// write path is deliberately minimal: the tuple is encoded into a stack
// scratch buffer and copied into the buffer's preallocated arena
// (pastset.Element.WriteCopy), so recording performs zero heap
// allocations per operation — the CI bench gate pins this at
// 0 allocs/op, the same discipline the disabled path's ≤1ns check
// enforces on the other branch.
package collect

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// TupleSize is the encoded size of a trace tuple: the paper's 28 bytes
// (about 37 450 tuples per megabyte).
const TupleSize = 28

// TraceTuple is the record an event collector writes per operation:
// event collector identifier, PastSet operation type, tuple sequence
// number, return value, and the start and completion timestamps.
type TraceTuple struct {
	ECID  uint32
	Op    paths.OpKind
	Ret   int16
	Seq   uint32
	Start hrtime.Stamp
	End   hrtime.Stamp
}

// Encode packs the tuple into a fresh 28-byte slice.
func (t TraceTuple) Encode() []byte {
	buf := make([]byte, TupleSize)
	t.EncodeTo(buf)
	return buf
}

// EncodeTo packs the tuple into buf, which must be at least TupleSize
// bytes.
//
//lint:hotpath per-operation encode; gated by BenchmarkOpOverhead's zero-alloc check
func (t TraceTuple) EncodeTo(buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:4], t.ECID)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(t.Op))
	binary.LittleEndian.PutUint16(buf[6:8], uint16(t.Ret))
	binary.LittleEndian.PutUint32(buf[8:12], t.Seq)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(t.Start))
	binary.LittleEndian.PutUint64(buf[20:28], uint64(t.End))
}

// Decode unpacks a 28-byte trace tuple.
func Decode(buf []byte) (TraceTuple, error) {
	if len(buf) < TupleSize {
		return TraceTuple{}, fmt.Errorf("collect: short trace tuple (%d bytes)", len(buf))
	}
	return TraceTuple{
		ECID:  binary.LittleEndian.Uint32(buf[0:4]),
		Op:    paths.OpKind(binary.LittleEndian.Uint16(buf[4:6])),
		Ret:   int16(binary.LittleEndian.Uint16(buf[6:8])),
		Seq:   binary.LittleEndian.Uint32(buf[8:12]),
		Start: int64(binary.LittleEndian.Uint64(buf[12:20])),
		End:   int64(binary.LittleEndian.Uint64(buf[20:28])),
	}, nil
}

// PartialTupleError reports a payload that ends mid-tuple: Offset is
// where the short trailing tuple starts and Remaining how many bytes of
// it are present (0 < Remaining < TupleSize). The archive's torn-tail
// recovery uses Offset as the truncation point.
type PartialTupleError struct {
	Offset    int // byte offset of the first incomplete tuple
	Remaining int // bytes present past Offset
}

// Error describes the partial tuple.
func (e *PartialTupleError) Error() string {
	return fmt.Sprintf("collect: partial trace tuple at byte %d (%d of %d bytes)",
		e.Offset, e.Remaining, TupleSize)
}

// DecodeAll unpacks a concatenation of trace tuples, as produced by batch
// readers and gather wrappers. A payload ending mid-tuple yields every
// whole tuple before the tear together with a *PartialTupleError
// locating it, so callers can keep the intact prefix.
func DecodeAll(buf []byte) ([]TraceTuple, error) {
	return DecodeAppend(make([]TraceTuple, 0, len(buf)/TupleSize), buf)
}

// DecodeAppend is DecodeAll into a caller-provided slice: decoded tuples
// are appended to dst and the extended slice returned. Loops that decode
// batch after batch pass dst[:0] to recycle the backing array, so the
// steady state allocates nothing (the archive reader's block decoder and
// the writer's raw-append path both run this way).
func DecodeAppend(dst []TraceTuple, buf []byte) ([]TraceTuple, error) {
	whole := len(buf) / TupleSize
	if need := len(dst) + whole; cap(dst) < need {
		grown := make([]TraceTuple, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for off := 0; off+TupleSize <= len(buf); off += TupleSize {
		t, err := Decode(buf[off : off+TupleSize])
		if err != nil {
			return dst, err
		}
		dst = append(dst, t)
	}
	if rem := len(buf) % TupleSize; rem != 0 {
		return dst, &PartialTupleError{Offset: whole * TupleSize, Remaining: rem}
	}
	return dst, nil
}

// Role describes where in a spanning tree an event collector sits, so
// monitors know which tuples to combine for which metric (section 3).
type Role uint8

// Event collector roles.
const (
	// RoleGeneric marks a collector with no special position.
	RoleGeneric Role = iota
	// RoleContributor sits on contributor i's path just before a
	// collective wrapper; its tuples give t1_i and t4_i.
	RoleContributor
	// RoleCollective sits after a collective wrapper (on the upward
	// path); its tuples give t2 and t3.
	RoleCollective
	// RoleStubClient sits just before an inter-host stub; its tuples
	// give t1 and t4 of the TCP latency formula.
	RoleStubClient
	// RoleStubServer is the first collector called by a communication
	// thread; its tuples give t2 and t3 of the TCP latency formula.
	RoleStubServer
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleGeneric:
		return "generic"
	case RoleContributor:
		return "contributor"
	case RoleCollective:
		return "collective"
	case RoleStubClient:
		return "stub-client"
	case RoleStubServer:
		return "stub-server"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Meta ties an event collector to its place in the monitored structure.
type Meta struct {
	Role        Role
	Tree        string // spanning tree name
	Node        string // tree node (e.g. allreduce wrapper) it instruments
	Contributor int    // contributor index for RoleContributor, else -1
}

// EventCollector is the instrumentation wrapper. It is itself a PATHS
// wrapper so paths are instrumented by insertion, leaving the surrounding
// wrappers untouched.
type EventCollector struct {
	name string
	host *vnet.Host
	id   uint32
	meta Meta
	next paths.Wrapper
	buf  *pastset.Element
	seq  atomic.Uint32

	enabled atomic.Bool
	met     atomic.Pointer[metrics.Op]
}

// Name returns the collector's name.
func (e *EventCollector) Name() string { return e.name }

// Host returns the collector's host.
func (e *EventCollector) Host() *vnet.Host { return e.host }

// ID returns the collector's identifier, as recorded in its tuples.
func (e *EventCollector) ID() uint32 { return e.id }

// Meta returns the collector's structural metadata.
func (e *EventCollector) Meta() Meta { return e.meta }

// Buffer returns the collector's trace buffer.
func (e *EventCollector) Buffer() *pastset.Element { return e.buf }

// SetEnabled turns recording on or off. Disabled collectors forward
// operations untouched; the paper measures monitored runs against exactly
// this un-instrumented behaviour.
func (e *EventCollector) SetEnabled(on bool) { e.enabled.Store(on) }

// SetMetrics installs the collector's self-metrics site, which records
// the cost of each tuple write (the paper's "cost of monitoring": encode
// plus buffer write, not the traced operation itself). nil disables.
func (e *EventCollector) SetMetrics(op *metrics.Op) { e.met.Store(op) }

// Op timestamps the next wrapper's operation and records a trace tuple.
// Failed operations record Ret = -1 before the error propagates.
//
//lint:hotpath the paper's "cost of monitoring" path: encode + buffer write, zero allocations
func (e *EventCollector) Op(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
	if !e.enabled.Load() {
		return e.next.Op(ctx, req)
	}
	start := hrtime.Now()
	rep, err := e.next.Op(ctx, req)
	end := hrtime.Now()
	t := TraceTuple{
		ECID:  e.id,
		Op:    req.Kind,
		Ret:   rep.Ret,
		Seq:   e.seq.Add(1) - 1,
		Start: start,
		End:   end,
	}
	if err != nil {
		t.Ret = -1
	}
	// The write must not fail the traced operation: a closed trace
	// buffer simply stops recording. The scratch array stays on the
	// stack — WriteCopy never retains its argument — so the whole
	// record step allocates nothing.
	var scratch [TupleSize]byte
	t.EncodeTo(scratch[:])
	_, _ = e.buf.WriteCopy(scratch[:])
	if m := e.met.Load(); m != nil {
		m.Record(hrtime.Now()-end, TupleSize, nil)
	}
	return rep, err
}

var _ paths.Wrapper = (*EventCollector)(nil)

// Registry assigns event collector ids and remembers every collector so
// event scopes and monitors can locate trace buffers and metadata by id.
type Registry struct {
	mu   sync.Mutex
	byID map[uint32]*EventCollector
	next uint32
	met  *metrics.Registry
}

// NewRegistry returns an empty collector registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[uint32]*EventCollector)}
}

// UseMetrics wires every collector created afterwards (and all existing
// ones) into the self-metrics registry. nil detaches new collectors.
func (r *Registry) UseMetrics(mr *metrics.Registry) {
	r.mu.Lock()
	r.met = mr
	ecs := make([]*EventCollector, 0, len(r.byID))
	for _, ec := range r.byID {
		ecs = append(ecs, ec)
	}
	r.mu.Unlock()
	for _, ec := range ecs {
		if mr == nil {
			ec.SetMetrics(nil)
		} else {
			ec.SetMetrics(mr.Op(metrics.KindCollector, ec.Name()))
		}
	}
}

// New creates an event collector around next, backed by a fresh trace
// buffer of bufCap tuples registered in the host's PastSet registry under
// "trace/<name>". Trace buffers are fixed-record elements: the 28-byte
// tuples live in a preallocated arena, which is what keeps the recording
// hot path at zero allocations per operation. Collectors start enabled.
func (r *Registry) New(name string, host *vnet.Host, meta Meta, next paths.Wrapper, bufCap int) (*EventCollector, error) {
	if next == nil {
		return nil, fmt.Errorf("collect: collector %q: %w", name, paths.ErrNoNext)
	}
	buf, err := host.Registry.CreateFixed("trace/"+name, bufCap, TupleSize)
	if err != nil {
		return nil, fmt.Errorf("collect: collector %q: %v", name, err)
	}
	r.mu.Lock()
	r.next++
	id := r.next
	r.mu.Unlock()
	ec := &EventCollector{name: name, host: host, id: id, meta: meta, next: next, buf: buf}
	ec.enabled.Store(true)
	r.mu.Lock()
	r.byID[id] = ec
	mr := r.met
	r.mu.Unlock()
	if mr != nil {
		ec.SetMetrics(mr.Op(metrics.KindCollector, name))
	}
	return ec, nil
}

// ByID looks a collector up by id.
func (r *Registry) ByID(id uint32) (*EventCollector, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ec, ok := r.byID[id]
	return ec, ok
}

// All returns every registered collector in id order.
func (r *Registry) All() []*EventCollector {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*EventCollector, 0, len(r.byID))
	for id := uint32(1); id <= r.next; id++ {
		if ec, ok := r.byID[id]; ok {
			out = append(out, ec)
		}
	}
	return out
}

// OnHost returns every collector whose trace buffer lives on host, in id
// order.
func (r *Registry) OnHost(host *vnet.Host) []*EventCollector {
	var out []*EventCollector
	for _, ec := range r.All() {
		if ec.Host() == host {
			out = append(out, ec)
		}
	}
	return out
}

// SetAllEnabled flips recording on every registered collector.
func (r *Registry) SetAllEnabled(on bool) {
	for _, ec := range r.All() {
		ec.SetEnabled(on)
	}
}
