package collect

import (
	"testing"

	"eventspace/internal/hrtime"
	"eventspace/internal/paths"
)

func batch(tuples int) []byte {
	return make([]byte, tuples*TupleSize)
}

func TestIngestQueueFIFO(t *testing.T) {
	q := NewIngestQueue(4)
	a, b, c := batch(1), batch(2), batch(3)
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i, want := range [][]byte{a, b, c} {
		got, ok := q.Pop()
		if !ok || &got[0] != &want[0] {
			t.Fatalf("pop %d: wrong batch (ok=%v)", i, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	st := q.Stats()
	if st.Pushed != 3 || st.Popped != 3 || st.Queued != 0 || st.ShedBatches != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestQueueShedsOldest(t *testing.T) {
	q := NewIngestQueue(2)
	a, b, c := batch(5), batch(1), batch(1)
	q.Push(a)
	q.Push(b)
	q.Push(c) // full: sheds a, the oldest
	st := q.Stats()
	if st.ShedBatches != 1 || st.ShedTuples != 5 || st.ShedBytes != uint64(5*TupleSize) {
		t.Fatalf("shed stats = %+v", st)
	}
	got, ok := q.Pop()
	if !ok || &got[0] != &b[0] {
		t.Fatal("oldest surviving batch should be b")
	}
	got, ok = q.Pop()
	if !ok || &got[0] != &c[0] {
		t.Fatal("second surviving batch should be c")
	}
}

func TestIngestQueueSummaryOnly(t *testing.T) {
	q := NewIngestQueue(4)
	q.Push(batch(2))
	q.SetSummaryOnly(true)
	q.Push(batch(3))
	q.Push(batch(4))
	st := q.Stats()
	if st.SummarizedBatches != 2 || st.SummarizedTuples != 7 || st.SummarizedBytes != uint64(7*TupleSize) {
		t.Fatalf("summary stats = %+v", st)
	}
	// The batch queued before the flip is still drainable.
	if st.Queued != 1 {
		t.Fatalf("queued = %d", st.Queued)
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("pre-flip batch lost")
	}
	q.SetSummaryOnly(false)
	q.Push(batch(1))
	if q.Len() != 1 {
		t.Fatal("push after summary-only cleared not retained")
	}
}

func TestIngestQueueIgnoresEmpty(t *testing.T) {
	q := NewIngestQueue(2)
	q.Push(nil)
	q.Push([]byte{})
	if st := q.Stats(); st.Pushed != 0 || st.Queued != 0 {
		t.Fatalf("stats after empty pushes = %+v", st)
	}
}

// TestIngestShedZeroAlloc is the shed hot-path allocation gate: pushing
// into a full ring (shedding the oldest batch each time) must not
// allocate.
func TestIngestShedZeroAlloc(t *testing.T) {
	q := NewIngestQueue(2)
	data := batch(4)
	q.Push(batch(4))
	q.Push(batch(4))
	allocs := testing.AllocsPerRun(1000, func() {
		q.Push(data) // full: sheds, then retains data
	})
	if allocs != 0 {
		t.Fatalf("shed path allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkIngestShed(b *testing.B) {
	q := NewIngestQueue(2)
	data := batch(4)
	q.Push(batch(4))
	q.Push(batch(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(data)
	}
}

func TestModeTupleRoundTrip(t *testing.T) {
	m := ModeTuple{
		ScopeHash: HashName("lb/scope"),
		From:      0,
		To:        2,
		Seq:       7,
		At:        hrtime.Stamp(123456789),
	}
	tt := EncodeMode(m)
	if tt.ECID != ControlECID || tt.Op != paths.OpMode {
		t.Fatalf("encoded control fields = %d/%v", tt.ECID, tt.Op)
	}
	// Survives the binary wire format used by buffers and the archive.
	dec, err := Decode(tt.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := DecodeMode(dec)
	if !ok {
		t.Fatal("DecodeMode rejected a mode tuple")
	}
	if got != m {
		t.Fatalf("round trip: got %+v want %+v", got, m)
	}
	// Ordinary data tuples are not misread as control tuples.
	if _, ok := DecodeMode(TraceTuple{ECID: 1, Op: paths.OpRead}); ok {
		t.Fatal("data tuple decoded as mode tuple")
	}
	if _, ok := DecodeMode(TraceTuple{ECID: ControlECID, Op: paths.OpRead}); ok {
		t.Fatal("non-mode control tuple decoded as mode tuple")
	}
}
