// Alert control tuples. A continuous query (internal/query) firing on
// the live gather stream is recorded as a control tuple on the reserved
// collector id 0, exactly like degradation-mode transitions (modes.go):
// the alert is archived alongside the data tuples that caused it, and
// replaying the archive regenerates the identical alert stream from the
// data tuples alone — the byte-for-byte contract the determinism tests
// pin down.
package collect

import (
	"eventspace/internal/hrtime"
	"eventspace/internal/paths"
)

// AlertTuple is a decoded continuous-query alert: the identity of the
// standing query (as the FNV-64 hash of its canonical esql text), the
// group the alert fired for (an event-collector id for `by ecid`
// queries, 0 for ungrouped queries — real collector ids start at 1), a
// dense per-engine alert sequence number, and the evaluation-tick stamp
// the query fired at.
type AlertTuple struct {
	QueryHash uint64
	Group     uint16
	Seq       uint32
	At        hrtime.Stamp
}

// EncodeAlert packs an alert into the standard 28-byte tuple layout:
// ECID 0, Op OpAlert, the group in Ret, the alert sequence in Seq, the
// tick stamp in Start and the query hash in End. Group keys above 65535
// cannot be represented; the query engine refuses to group on them.
func EncodeAlert(a AlertTuple) TraceTuple {
	return TraceTuple{
		ECID:  ControlECID,
		Op:    paths.OpAlert,
		Ret:   int16(a.Group),
		Seq:   a.Seq,
		Start: a.At,
		End:   hrtime.Stamp(a.QueryHash),
	}
}

// DecodeAlert unpacks an alert from a trace tuple, reporting false for
// data tuples and non-alert control tuples.
func DecodeAlert(t TraceTuple) (AlertTuple, bool) {
	if t.ECID != ControlECID || t.Op != paths.OpAlert {
		return AlertTuple{}, false
	}
	return AlertTuple{
		QueryHash: uint64(t.End),
		Group:     uint16(t.Ret),
		Seq:       t.Seq,
		At:        t.Start,
	}, true
}
