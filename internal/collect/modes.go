// Control tuples. Real event collectors are numbered from 1, leaving
// collector id 0 free as a control channel inside the 28-byte tuple
// format. A monitor's degradation-mode transitions (strict →
// bounded-staleness → summary-only) are encoded as control tuples and
// appended to the trace archive alongside ordinary data, so replaying an
// archive reproduces not just what a degraded run observed but when and
// how it degraded — byte-identically.
package collect

import (
	"eventspace/internal/hrtime"
	"eventspace/internal/paths"
)

// ControlECID is the reserved collector id carried by control tuples.
// Registry-assigned collector ids start at 1, so id 0 never collides
// with trace data.
const ControlECID uint32 = 0

// HashName is the FNV-64 hash used to tie control tuples to the scope
// they describe: tuple space has no room for a name, so the scope's name
// hash rides in the End field.
func HashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ModeTuple is a decoded degradation-mode transition: scope identity (as
// a name hash), the mode ladder rungs moved between, a per-scope
// transition sequence number, and the modelled-time stamp.
type ModeTuple struct {
	ScopeHash uint64
	From, To  uint8
	Seq       uint32
	At        hrtime.Stamp
}

// EncodeMode packs a mode transition into the standard 28-byte tuple
// layout: ECID 0, Op OpMode, the two rungs in Ret's bytes, the
// transition sequence in Seq, the stamp in Start and the scope hash in
// End.
func EncodeMode(m ModeTuple) TraceTuple {
	return TraceTuple{
		ECID:  ControlECID,
		Op:    paths.OpMode,
		Ret:   int16(uint16(m.From)<<8 | uint16(m.To)),
		Seq:   m.Seq,
		Start: m.At,
		End:   hrtime.Stamp(m.ScopeHash),
	}
}

// DecodeMode unpacks a mode transition from a trace tuple, reporting
// false for ordinary data tuples.
func DecodeMode(t TraceTuple) (ModeTuple, bool) {
	if t.ECID != ControlECID || t.Op != paths.OpMode {
		return ModeTuple{}, false
	}
	return ModeTuple{
		ScopeHash: uint64(t.End),
		From:      uint8(uint16(t.Ret) >> 8),
		To:        uint8(uint16(t.Ret)),
		Seq:       t.Seq,
		At:        t.Start,
	}, true
}
