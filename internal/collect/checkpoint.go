// Checkpoint control tuples. When the recovery checkpointer
// (internal/checkpoint) persists a monitor-state snapshot, it appends a
// marker control tuple into the archive stream on the reserved
// collector id 0, exactly like degradation-mode transitions (modes.go)
// and continuous-query alerts (alert.go). The marker carries the
// checkpoint's chain sequence and the archive cursor it covers, so
// offline tooling can see where bounded-time recovery may begin without
// opening the sidecar chain. Markers are ignored by every replay join —
// like all control tuples — so archives with and without checkpoints
// replay byte-identically.
package collect

import (
	"eventspace/internal/hrtime"
	"eventspace/internal/paths"
)

// CheckpointMark is a decoded checkpoint marker: the checkpoint's chain
// sequence number, the count of durable tuples the checkpoint covers
// (its archive cursor), and the stamp of the newest data tuple folded
// into the snapshot.
type CheckpointMark struct {
	Seq    uint32
	Tuples uint64
	At     hrtime.Stamp
}

// EncodeCheckpointMark packs a marker into the standard 28-byte tuple
// layout: ECID 0, Op OpCheckpoint, the chain sequence in Seq, the
// snapshot stamp in Start and the covered tuple count in End.
func EncodeCheckpointMark(m CheckpointMark) TraceTuple {
	return TraceTuple{
		ECID:  ControlECID,
		Op:    paths.OpCheckpoint,
		Seq:   m.Seq,
		Start: m.At,
		End:   hrtime.Stamp(m.Tuples),
	}
}

// DecodeCheckpointMark unpacks a marker from a trace tuple, reporting
// false for data tuples and non-checkpoint control tuples.
func DecodeCheckpointMark(t TraceTuple) (CheckpointMark, bool) {
	if t.ECID != ControlECID || t.Op != paths.OpCheckpoint {
		return CheckpointMark{}, false
	}
	return CheckpointMark{
		Seq:    t.Seq,
		Tuples: uint64(t.End),
		At:     t.Start,
	}, true
}
