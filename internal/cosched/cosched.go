// Package cosched implements the coscheduling of analysis threads with
// computation and communication-system threads (sections 4.1 and 6.3.1).
//
// During a synchronizing collective operation all threads on a host wait
// for data from other hosts; analysis threads can run in that window
// without perturbing the application. The release order is controlled by
// two strategies from the paper:
//
//   - Strategy 1 (AfterSend): analysis threads are blocked until all
//     participating threads have contributed and the combined value has
//     been sent to the next-level host — analysis runs while the host
//     idles waiting for the broadcast.
//   - Strategy 2 (AfterUnblock): analysis threads are blocked until all
//     participating threads have been unblocked — the broadcast is done
//     before analysis runs. This strategy cut statsm overhead from 9% to
//     1% in the paper and is the default for its remaining experiments.
//
// No operating-system scheduler changes are needed: the controller is a
// paths.CollectiveNotifier wired into the host's collective wrappers, and
// analysis threads gate their batches on Waiter.Await.
package cosched

import (
	"sync"

	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// Strategy selects when analysis threads are admitted.
type Strategy int

// Coscheduling strategies.
const (
	// None runs analysis threads freely (the paper's 5-9% overhead
	// baseline).
	None Strategy = iota
	// AfterSend is strategy 1: admit once all local contributors have
	// arrived and the combined value is on its way up.
	AfterSend
	// AfterUnblock is strategy 2: admit once all local contributors have
	// been unblocked by the broadcast.
	AfterUnblock
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case None:
		return "none"
	case AfterSend:
		return "cosched-1"
	case AfterUnblock:
		return "cosched-2"
	default:
		return "strategy(?)"
	}
}

// Controller gates the analysis threads of one host. It implements
// paths.CollectiveNotifier; wire it into every collective wrapper on the
// host with SetNotifier.
type Controller struct {
	strategy Strategy

	mu     sync.Mutex
	cond   *vclock.Cond
	seq    uint64 // admission windows opened so far
	closed bool
}

// NewController creates a controller with the given strategy.
func NewController(strategy Strategy) *Controller {
	c := &Controller{strategy: strategy}
	c.cond = vclock.NewCond(&c.mu)
	return c
}

// Strategy returns the controller's strategy.
func (c *Controller) Strategy() Strategy { return c.strategy }

func (c *Controller) bump() {
	c.mu.Lock()
	c.seq++
	c.cond.Broadcast()
	c.mu.Unlock()
}

// AllSent implements paths.CollectiveNotifier.
func (c *Controller) AllSent(h *vnet.Host) {
	if c.strategy == AfterSend {
		c.bump()
	}
}

// AllReleased implements paths.CollectiveNotifier.
func (c *Controller) AllReleased(h *vnet.Host) {
	if c.strategy == AfterUnblock {
		c.bump()
	}
}

// Windows reports how many admission windows have opened.
func (c *Controller) Windows() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// Close releases all waiters permanently (shutdown). Subsequent Await
// calls return false immediately.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Waiter is one analysis thread's handle on the controller. Each analysis
// thread creates its own waiter and calls Await before every batch of
// analysis work.
type Waiter struct {
	c    *Controller
	seen uint64
}

// NewWaiter creates a waiter starting at the current window count.
func (c *Controller) NewWaiter() *Waiter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Waiter{c: c, seen: c.seq}
}

// Await blocks until the next admission window opens (or returns
// immediately under Strategy None). It returns false once the controller
// is closed.
func (w *Waiter) Await() bool {
	if w.c.strategy == None {
		w.c.mu.Lock()
		defer w.c.mu.Unlock()
		return !w.c.closed
	}
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	for w.c.seq <= w.seen && !w.c.closed {
		w.c.cond.Wait()
	}
	w.seen = w.c.seq
	return !w.c.closed
}

// Set manages one controller per host, created on demand. Trees wire it in
// via their Notifier hook and monitors gate analysis threads on the same
// controllers.
type Set struct {
	strategy Strategy
	mu       sync.Mutex
	m        map[*vnet.Host]*Controller
}

// NewSet creates an empty controller set with the given strategy.
func NewSet(strategy Strategy) *Set {
	return &Set{strategy: strategy, m: make(map[*vnet.Host]*Controller)}
}

// Strategy returns the set's strategy.
func (s *Set) Strategy() Strategy { return s.strategy }

// For returns host's controller, creating it on first use.
func (s *Set) For(h *vnet.Host) *Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[h]
	if !ok {
		c = NewController(s.strategy)
		s.m[h] = c
	}
	return c
}

// CloseAll closes every controller, releasing all analysis threads.
func (s *Set) CloseAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.m {
		c.Close()
	}
}
