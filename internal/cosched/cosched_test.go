package cosched

import (
	"testing"
	"time"
)

func TestStrategyString(t *testing.T) {
	if None.String() != "none" || AfterSend.String() != "cosched-1" || AfterUnblock.String() != "cosched-2" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() != "strategy(?)" {
		t.Fatal("unknown strategy name wrong")
	}
}

func TestNoneAdmitsImmediately(t *testing.T) {
	c := NewController(None)
	w := c.NewWaiter()
	done := make(chan bool, 1)
	go func() { done <- w.Await() }()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Await returned false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Strategy None blocked")
	}
}

func TestAfterSendGatesOnAllSent(t *testing.T) {
	c := NewController(AfterSend)
	w := c.NewWaiter()
	done := make(chan bool, 1)
	go func() { done <- w.Await() }()
	select {
	case <-done:
		t.Fatal("Await returned before AllSent")
	case <-time.After(20 * time.Millisecond):
	}
	c.AllReleased(nil) // wrong event for this strategy: still blocked
	select {
	case <-done:
		t.Fatal("Await admitted by AllReleased under AfterSend")
	case <-time.After(20 * time.Millisecond):
	}
	c.AllSent(nil)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Await returned false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Await not admitted by AllSent")
	}
	if c.Windows() != 1 {
		t.Fatalf("Windows = %d", c.Windows())
	}
}

func TestAfterUnblockGatesOnAllReleased(t *testing.T) {
	c := NewController(AfterUnblock)
	w := c.NewWaiter()
	done := make(chan bool, 1)
	go func() { done <- w.Await() }()
	c.AllSent(nil) // ignored under strategy 2
	select {
	case <-done:
		t.Fatal("Await admitted by AllSent under AfterUnblock")
	case <-time.After(20 * time.Millisecond):
	}
	c.AllReleased(nil)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Await returned false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Await not admitted by AllReleased")
	}
}

func TestAwaitConsumesOneWindowPerCall(t *testing.T) {
	c := NewController(AfterUnblock)
	w := c.NewWaiter()
	c.AllReleased(nil)
	c.AllReleased(nil)
	if !w.Await() {
		t.Fatal("first Await failed")
	}
	// Both windows were consumed by the seen-watermark: a second Await
	// must block until a new window opens.
	done := make(chan bool, 1)
	go func() { done <- w.Await() }()
	select {
	case <-done:
		t.Fatal("second Await returned with no new window")
	case <-time.After(20 * time.Millisecond):
	}
	c.AllReleased(nil)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second Await not admitted")
	}
}

func TestWaiterStartsAtCurrentWindow(t *testing.T) {
	c := NewController(AfterUnblock)
	c.AllReleased(nil)
	c.AllReleased(nil)
	w := c.NewWaiter() // windows before creation don't count
	done := make(chan bool, 1)
	go func() { done <- w.Await() }()
	select {
	case <-done:
		t.Fatal("Await admitted by stale windows")
	case <-time.After(20 * time.Millisecond):
	}
	c.AllReleased(nil)
	<-done
}

func TestCloseUnblocksAndStays(t *testing.T) {
	for _, s := range []Strategy{None, AfterSend, AfterUnblock} {
		c := NewController(s)
		w := c.NewWaiter()
		done := make(chan bool, 1)
		go func() { done <- w.Await() }()
		if s == None {
			if ok := <-done; !ok {
				t.Fatal("None Await false before close")
			}
			go func() { done <- w.Await() }()
		}
		time.Sleep(5 * time.Millisecond)
		c.Close()
		select {
		case ok := <-done:
			if ok && s != None {
				t.Fatalf("%v: Await true after close", s)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%v: Close did not unblock waiter", s)
		}
		if w.Await() {
			t.Fatalf("%v: Await true on closed controller", s)
		}
	}
}

func TestMultipleWaitersAllAdmitted(t *testing.T) {
	c := NewController(AfterUnblock)
	const n = 5
	done := make(chan bool, n)
	for i := 0; i < n; i++ {
		w := c.NewWaiter()
		go func() { done <- w.Await() }()
	}
	time.Sleep(10 * time.Millisecond)
	c.AllReleased(nil)
	for i := 0; i < n; i++ {
		select {
		case ok := <-done:
			if !ok {
				t.Fatal("waiter got false")
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d not admitted", i)
		}
	}
}
