package analysis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"eventspace/internal/collect"
)

func TestStreamBasicStats(t *testing.T) {
	s := NewStream(100)
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d", s.Count())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample std of this classic set is sqrt(32/7).
	if got := s.Std(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-9 {
		t.Fatalf("Std = %v", got)
	}
	if got := s.Median(); got != 4.5 {
		t.Fatalf("Median = %v", got)
	}
}

func TestStreamEmptyAndSingle(t *testing.T) {
	s := NewStream(10)
	if s.Mean() != 0 || s.Std() != 0 || s.Median() != 0 || s.Count() != 0 {
		t.Fatal("empty stream stats nonzero")
	}
	s.Add(-3)
	if s.Mean() != -3 || s.Min() != -3 || s.Max() != -3 || s.Std() != 0 || s.Median() != -3 {
		t.Fatalf("single-sample stats: %+v", s.Snapshot())
	}
}

func TestStreamSlidingWindowMedian(t *testing.T) {
	s := NewStream(3)
	for _, x := range []float64{100, 100, 100} {
		s.Add(x)
	}
	if s.Median() != 100 {
		t.Fatalf("Median = %v", s.Median())
	}
	// Window slides: the three newest are 1,2,3.
	s.Add(1)
	s.Add(2)
	s.Add(3)
	if s.Median() != 2 {
		t.Fatalf("Median after slide = %v (window should hold 1,2,3)", s.Median())
	}
	// Mean is over all samples, not the window.
	want := (100*3 + 1 + 2 + 3) / 6.0
	if math.Abs(s.Mean()-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", s.Mean(), want)
	}
}

func TestStreamDefaultWindow(t *testing.T) {
	s := NewStream(0)
	if s.window != DefaultMedianWindow {
		t.Fatalf("window = %d", s.window)
	}
}

// Property: against a brute-force reference for random samples.
func TestQuickStreamMatchesReference(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		const w = 7
		s := NewStream(w)
		var all []float64
		for _, v := range raw {
			x := float64(v)
			s.Add(x)
			all = append(all, x)
		}
		// Reference mean/min/max.
		var sum, mn, mx float64
		mn, mx = all[0], all[0]
		for _, x := range all {
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		mean := sum / float64(len(all))
		if math.Abs(s.Mean()-mean) > 1e-6*(1+math.Abs(mean)) || s.Min() != mn || s.Max() != mx {
			return false
		}
		// Reference windowed median.
		start := 0
		if len(all) > w {
			start = len(all) - w
		}
		win := append([]float64(nil), all[start:]...)
		sort.Float64s(win)
		var med float64
		if len(win)%2 == 1 {
			med = win[len(win)/2]
		} else {
			med = (win[len(win)/2-1] + win[len(win)/2]) / 2
		}
		return math.Abs(s.Median()-med) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPLatency(t *testing.T) {
	client := collect.TraceTuple{Start: 1000, End: 5000} // t1, t4
	server := collect.TraceTuple{Start: 2000, End: 3500} // t2, t3
	// (5000-1000) - (3500-2000) = 2500
	if got := TCPLatency(client, server); got != 2500 {
		t.Fatalf("TCPLatency = %v", got)
	}
}

func mkRound(t *testing.T, k int, t2, t3 int64, arr, dep []int64) *Round {
	t.Helper()
	r := &Round{Seq: 1, Contribs: make(map[int]collect.TraceTuple), wantK: k}
	r.Collective = collect.TraceTuple{Seq: 1, Start: t2, End: t3}
	r.haveColl = true
	for i := 0; i < k; i++ {
		r.Contribs[i] = collect.TraceTuple{Seq: 1, Start: arr[i], End: dep[i]}
	}
	return r
}

func TestAnalyzeRoundMetrics(t *testing.T) {
	// Three contributors: arrivals at 10, 30, 20; collective runs 35..40;
	// departures at 50, 44, 47.
	r := mkRound(t, 3, 35, 40, []int64{10, 30, 20}, []int64{50, 44, 47})
	m, err := AnalyzeRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.LastArrival != 1 {
		t.Fatalf("LastArrival = %d", m.LastArrival)
	}
	if m.FirstDepart != 1 {
		t.Fatalf("FirstDepart = %d", m.FirstDepart)
	}
	c0 := m.Per[0]
	if c0.Down != 25 { // t2 - t1 = 35-10
		t.Fatalf("c0.Down = %v", c0.Down)
	}
	if c0.Up != 10 { // t4 - t3 = 50-40
		t.Fatalf("c0.Up = %v", c0.Up)
	}
	if c0.Total != 35 { // (50-10)-(40-35)
		t.Fatalf("c0.Total = %v", c0.Total)
	}
	if c0.ArrivalRank != 0 || c0.DepartureRank != 2 {
		t.Fatalf("c0 ranks = %d/%d", c0.ArrivalRank, c0.DepartureRank)
	}
	if c0.ArrivalWait != 20 { // t1_last(30) - 10
		t.Fatalf("c0.ArrivalWait = %v", c0.ArrivalWait)
	}
	if c0.DepartureWait != 6 { // 50 - t4_first(44)
		t.Fatalf("c0.DepartureWait = %v", c0.DepartureWait)
	}
	c1 := m.Per[1]
	if c1.ArrivalWait != 0 || c1.DepartureWait != 0 {
		t.Fatalf("last arriver / first departer waits = %v/%v", c1.ArrivalWait, c1.DepartureWait)
	}
}

func TestAnalyzeRoundIncomplete(t *testing.T) {
	r := &Round{Seq: 1, Contribs: map[int]collect.TraceTuple{}, wantK: 2}
	if _, err := AnalyzeRound(r); err == nil {
		t.Fatal("incomplete round analyzed")
	}
}

func TestAnalyzeRoundTieBreaksDeterministic(t *testing.T) {
	r := mkRound(t, 3, 10, 20, []int64{5, 5, 5}, []int64{25, 25, 25})
	m, err := AnalyzeRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.LastArrival != 2 || m.FirstDepart != 0 {
		t.Fatalf("tie break: last=%d first=%d", m.LastArrival, m.FirstDepart)
	}
}

func TestJoinerEmitsCompletedRounds(t *testing.T) {
	var got []RoundMetrics
	j, err := NewJoiner(2, 8, func(m RoundMetrics) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint32(0); seq < 5; seq++ {
		j.AddContributor(0, collect.TraceTuple{Seq: seq, Start: 10, End: 50})
		j.AddContributor(1, collect.TraceTuple{Seq: seq, Start: 20, End: 40})
		j.AddCollective(collect.TraceTuple{Seq: seq, Start: 25, End: 30})
	}
	if len(got) != 5 {
		t.Fatalf("emitted %d rounds", len(got))
	}
	if j.Pending() != 0 || j.Lost() != 0 {
		t.Fatalf("pending=%d lost=%d", j.Pending(), j.Lost())
	}
	if got[0].LastArrival != 1 {
		t.Fatalf("LastArrival = %d", got[0].LastArrival)
	}
}

func TestJoinerOutOfOrderDelivery(t *testing.T) {
	var got []RoundMetrics
	j, _ := NewJoiner(2, 8, func(m RoundMetrics) { got = append(got, m) })
	// Collective tuple arrives before contributors, and rounds interleave.
	j.AddCollective(collect.TraceTuple{Seq: 1, Start: 25, End: 30})
	j.AddCollective(collect.TraceTuple{Seq: 0, Start: 25, End: 30})
	j.AddContributor(1, collect.TraceTuple{Seq: 1, Start: 20, End: 40})
	j.AddContributor(0, collect.TraceTuple{Seq: 0, Start: 10, End: 50})
	j.AddContributor(0, collect.TraceTuple{Seq: 1, Start: 10, End: 50})
	j.AddContributor(1, collect.TraceTuple{Seq: 0, Start: 20, End: 40})
	if len(got) != 2 {
		t.Fatalf("emitted %d rounds", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 0 {
		t.Fatalf("completion order = %d,%d", got[0].Seq, got[1].Seq)
	}
}

func TestJoinerEvictsOldest(t *testing.T) {
	j, _ := NewJoiner(2, 3, func(RoundMetrics) {})
	for seq := uint32(0); seq < 10; seq++ {
		j.AddContributor(0, collect.TraceTuple{Seq: seq})
	}
	if j.Pending() > 3 {
		t.Fatalf("pending = %d, cap 3", j.Pending())
	}
	if j.Lost() != 7 {
		t.Fatalf("lost = %d, want 7", j.Lost())
	}
}

func TestJoinerValidation(t *testing.T) {
	if _, err := NewJoiner(0, 1, func(RoundMetrics) {}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewJoiner(2, 1, nil); err == nil {
		t.Fatal("nil emit accepted")
	}
	j, err := NewJoiner(2, 0, func(RoundMetrics) {})
	if err != nil || j.maxPending != 64 {
		t.Fatalf("maxPending default: %d %v", j.maxPending, err)
	}
}

func TestOrderCounter(t *testing.T) {
	c := NewOrderCounter(3)
	c.Observe(0, 2)
	c.Observe(0, 2)
	c.Observe(1, 0)
	c.Observe(2, 2)
	c.Observe(-1, 0) // ignored
	c.Observe(0, 9)  // ignored
	if c.Count(0, 2) != 2 || c.Count(1, 0) != 1 {
		t.Fatal("counts wrong")
	}
	if c.Count(-1, 0) != 0 || c.Count(0, 99) != 0 {
		t.Fatal("out-of-range count nonzero")
	}
	last := c.LastCounts()
	if last[0] != 2 || last[1] != 0 || last[2] != 1 {
		t.Fatalf("LastCounts = %v", last)
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestStatsRecordCodec(t *testing.T) {
	in := StatsRecordFrom(42, KindUp, Result{Count: 7, Mean: 1.5, Min: 1, Max: 2, Std: 0.5, Median: 1.25})
	out, err := DecodeStatsRecord(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := DecodeStatsRecord(make([]byte, 10)); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestStatsRecordCountSaturates(t *testing.T) {
	r := StatsRecordFrom(1, KindDown, Result{Count: 1 << 30})
	if r.Count != math.MaxUint16 {
		t.Fatalf("Count = %d", r.Count)
	}
}

func TestQuickStatsRecordCodec(t *testing.T) {
	f := func(id uint32, kind uint8, count uint16, mean, min, max, std, med float32) bool {
		in := StatsRecord{ID: id, Kind: kind, Count: count, Mean: mean, Min: min, Max: max, Std: std, Median: med}
		out, err := DecodeStatsRecord(in.Encode())
		if err != nil {
			return false
		}
		// NaN != NaN; compare bit patterns.
		return out.ID == in.ID && out.Kind == in.Kind && out.Count == in.Count &&
			math.Float32bits(out.Mean) == math.Float32bits(in.Mean) &&
			math.Float32bits(out.Median) == math.Float32bits(in.Median)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeStatsRecords(t *testing.T) {
	a := StatsRecordFrom(1, KindDown, Result{Count: 1})
	b := StatsRecordFrom(2, KindUp, Result{Count: 2})
	recs, err := DecodeStatsRecords(append(a.Encode(), b.Encode()...))
	if err != nil || len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 2 {
		t.Fatalf("DecodeStatsRecords: %+v %v", recs, err)
	}
	if _, err := DecodeStatsRecords(make([]byte, 30)); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

func TestLastArrivalRecordCodec(t *testing.T) {
	in := LastArrivalRecord{Node: 5, Contributor: 3, Count: 1 << 40}
	out, err := DecodeLastArrivalRecord(in.Encode())
	if err != nil || out != in {
		t.Fatalf("round trip: %+v %v", out, err)
	}
	if _, err := DecodeLastArrivalRecord(make([]byte, 8)); err == nil {
		t.Fatal("short record accepted")
	}
	recs, err := DecodeLastArrivalRecords(append(in.Encode(), in.Encode()...))
	if err != nil || len(recs) != 2 {
		t.Fatalf("batch decode: %v %v", recs, err)
	}
	if _, err := DecodeLastArrivalRecords(make([]byte, 20)); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

func TestKindName(t *testing.T) {
	for kind, want := range map[int]string{
		KindDown: "down", KindUp: "up", KindTotal: "total",
		KindArrivalWait: "arrival-wait", KindDepartureWait: "departure-wait",
		KindTCP: "tcp", 99: "kind(99)",
	} {
		if KindName(kind) != want {
			t.Fatalf("KindName(%d) = %q", kind, KindName(kind))
		}
	}
}

func TestResultString(t *testing.T) {
	s := Result{Count: 3, Mean: 1, Min: 0, Max: 2, Std: 1, Median: 1}.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func TestRoundMetricsDurationsConsistent(t *testing.T) {
	// Total == Down + Up for every contributor (algebraic identity).
	r := mkRound(t, 4, 100, 140, []int64{10, 40, 25, 33}, []int64{200, 150, 170, 160})
	m, err := AnalyzeRound(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Per {
		if c.Total != c.Down+c.Up {
			t.Fatalf("contributor %d: total %v != down %v + up %v", c.Contributor, c.Total, c.Down, c.Up)
		}
	}
}

func TestStreamSnapshotMatchesAccessors(t *testing.T) {
	s := NewStream(5)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	snap := s.Snapshot()
	if snap.Mean != s.Mean() || snap.Min != s.Min() || snap.Max != s.Max() ||
		snap.Std != s.Std() || snap.Median != s.Median() || snap.Count != s.Count() {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	_ = time.Microsecond
}
