// Package analysis computes the performance metrics of section 3 from
// trace tuples: up/down/total latencies per wrapper, the two-way TCP/IP
// latency formula, arrival and departure order distributions, arrival and
// departure wait times, and the streaming statistics (mean, minimum,
// maximum, standard deviation, and the NWS sliding-window median) the
// statistics monitor maintains per wrapper.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// DefaultMedianWindow is the sliding-window size the paper uses for the
// NWS median implementation (section 4.3: "window size set to 100").
const DefaultMedianWindow = 100

// Stream maintains streaming statistics over a series of float64 samples:
// Welford mean/variance, min/max, and a sliding-window median.
type Stream struct {
	n      uint64
	mean   float64
	m2     float64
	min    float64
	max    float64
	window int
	ring   []float64 // last `window` samples in arrival order
	head   int
	sorted []float64 // the same samples kept sorted
}

// NewStream creates a stream with the given median window (values < 1 use
// DefaultMedianWindow).
func NewStream(window int) *Stream {
	if window < 1 {
		window = DefaultMedianWindow
	}
	return &Stream{window: window}
}

// Add folds a sample into the statistics.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	// Welford's online mean and variance.
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)

	// Sliding-window median bookkeeping: evict the oldest sample once
	// the window is full, insert the new one keeping `sorted` ordered.
	if len(s.ring) < s.window {
		s.ring = append(s.ring, x)
	} else {
		old := s.ring[s.head]
		s.ring[s.head] = x
		s.head = (s.head + 1) % s.window
		i := sort.SearchFloat64s(s.sorted, old)
		s.sorted = append(s.sorted[:i], s.sorted[i+1:]...)
	}
	i := sort.SearchFloat64s(s.sorted, x)
	s.sorted = append(s.sorted, 0)
	copy(s.sorted[i+1:], s.sorted[i:])
	s.sorted[i] = x
}

// Count returns the number of samples seen.
func (s *Stream) Count() uint64 { return s.n }

// Mean returns the running mean (0 with no samples).
func (s *Stream) Mean() float64 { return s.mean }

// Min returns the smallest sample seen.
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample seen.
func (s *Stream) Max() float64 { return s.max }

// Std returns the sample standard deviation (0 with fewer than 2 samples).
func (s *Stream) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Median returns the median of the sliding window (0 with no samples).
func (s *Stream) Median() float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s.sorted[n/2]
	}
	return (s.sorted[n/2-1] + s.sorted[n/2]) / 2
}

// Snapshot returns the stream's statistics as a Result.
func (s *Stream) Snapshot() Result {
	return Result{
		Count:  s.n,
		Mean:   s.mean,
		Min:    s.min,
		Max:    s.max,
		Std:    s.Std(),
		Median: s.Median(),
	}
}

// Result is a snapshot of a stream's statistics.
type Result struct {
	Count  uint64
	Mean   float64
	Min    float64
	Max    float64
	Std    float64
	Median float64
}

// String formats a result for tables and logs.
func (r Result) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%.1f max=%.1f std=%.1f median=%.1f",
		r.Count, r.Mean, r.Min, r.Max, r.Std, r.Median)
}
