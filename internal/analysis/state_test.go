package analysis

import (
	"math/rand"
	"testing"

	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// TestStreamSplitEquivalence is the snapshot contract: splitting a
// sample sequence at any point — feed, snapshot, restore, feed the
// rest — yields exactly the statistics of a straight-through stream.
func TestStreamSplitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.Float64() * 1000
	}
	for _, split := range []int{0, 1, 50, 99, 100, 101, 250, 499, 500} {
		full := NewStream(100)
		head := NewStream(100)
		for i, x := range samples {
			full.Add(x)
			if i < split {
				head.Add(x)
			}
		}
		tail, err := NewStreamFrom(head.State())
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		for _, x := range samples[split:] {
			tail.Add(x)
		}
		if got, want := tail.Snapshot(), full.Snapshot(); got != want {
			t.Fatalf("split %d: restored stream %+v, straight-through %+v", split, got, want)
		}
	}
}

func TestStreamStateRejectsCorrupt(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	st := s.State()
	st.Ring = append(st.Ring, 1, 2, 3) // exceeds window
	if _, err := NewStreamFrom(st); err == nil {
		t.Fatal("oversized ring accepted")
	}
	st2 := s.State()
	st2.N = 1 // fewer samples than ring entries
	if _, err := NewStreamFrom(st2); err == nil {
		t.Fatal("ring longer than sample count accepted")
	}
}

// joinTuple fabricates round tuples: contributor c of round seq.
func joinTuple(ecid uint32, seq uint32, start, end int64) collect.TraceTuple {
	return collect.TraceTuple{ECID: ecid, Op: paths.OpWrite, Seq: seq, Start: start, End: end}
}

// TestJoinerSplitEquivalence verifies a snapshotted/restored joiner
// completes the same rounds with the same metrics as one that saw the
// whole stream, including rounds that straddle the snapshot.
func TestJoinerSplitEquivalence(t *testing.T) {
	const k = 3
	type event struct {
		contributor int // -1 = collective
		t           collect.TraceTuple
	}
	rng := rand.New(rand.NewSource(2))
	var events []event
	for seq := uint32(0); seq < 60; seq++ {
		base := int64(1000 + 100*int64(seq))
		events = append(events, event{-1, joinTuple(99, seq, base+10, base+20)})
		for c := 0; c < k; c++ {
			events = append(events, event{c, joinTuple(uint32(c), seq, base + int64(c), base + 30 + int64(c))})
		}
	}
	// Shuffle within a small horizon so rounds interleave and some are
	// pending at every split point.
	rng.Shuffle(len(events), func(i, j int) {
		if d := i - j; d < 12 && d > -12 {
			events[i], events[j] = events[j], events[i]
		}
	})

	run := func(j *Joiner, evs []event) {
		for _, ev := range evs {
			if ev.contributor < 0 {
				j.AddCollective(ev.t)
			} else {
				j.AddContributor(ev.contributor, ev.t)
			}
		}
	}
	for _, split := range []int{0, 7, 33, 120, len(events)} {
		var fullOut, splitOut []RoundMetrics
		full, err := NewJoiner(k, 64, func(m RoundMetrics) { fullOut = append(fullOut, m) })
		if err != nil {
			t.Fatal(err)
		}
		run(full, events)

		head, err := NewJoiner(k, 64, func(m RoundMetrics) { splitOut = append(splitOut, m) })
		if err != nil {
			t.Fatal(err)
		}
		run(head, events[:split])
		tail, err := NewJoinerFrom(head.State(), func(m RoundMetrics) { splitOut = append(splitOut, m) })
		if err != nil {
			t.Fatal(err)
		}
		run(tail, events[split:])

		if len(splitOut) != len(fullOut) {
			t.Fatalf("split %d: %d rounds completed, want %d", split, len(splitOut), len(fullOut))
		}
		for i := range fullOut {
			if splitOut[i].Seq != fullOut[i].Seq || splitOut[i].LastArrival != fullOut[i].LastArrival {
				t.Fatalf("split %d: round %d = %+v, want %+v", split, i, splitOut[i], fullOut[i])
			}
		}
		if tail.Lost() != full.Lost() {
			t.Fatalf("split %d: lost %d, want %d", split, tail.Lost(), full.Lost())
		}
		if tail.Pending() != full.Pending() {
			t.Fatalf("split %d: pending %d, want %d", split, tail.Pending(), full.Pending())
		}
	}
}

func TestJoinerStateRejectsMismatchedK(t *testing.T) {
	j, err := NewJoiner(3, 64, func(RoundMetrics) {})
	if err != nil {
		t.Fatal(err)
	}
	st := j.State()
	st.K = 4
	if err := j.Restore(st); err == nil {
		t.Fatal("k mismatch accepted")
	}
}
