package analysis

import (
	"fmt"
	"sort"
	"time"

	"eventspace/internal/collect"
)

// TCPLatency computes the two-way TCP/IP latency of an inter-host hop from
// the stub-side tuple (t1 = Start, t4 = End, collected before the stub by
// e.g. EC12 in figure 1) and the communication-thread-side tuple
// (t2 = Start, t3 = End, collected by the first event collector the CT
// calls, e.g. EC13): (t4-t1) - (t3-t2).
func TCPLatency(client, server collect.TraceTuple) time.Duration {
	return time.Duration((client.End - client.Start) - (server.End - server.Start))
}

// Round is one completed collective operation: the collective wrapper's
// tuple (t2 = Start, t3 = End) plus each contributor's tuple
// (t1_i = Start, t4_i = End), joined on the operation sequence number.
type Round struct {
	Seq        uint32
	Collective collect.TraceTuple
	Contribs   map[int]collect.TraceTuple
	wantK      int
	haveColl   bool
}

// Complete reports whether all contributor tuples and the collective
// tuple have arrived.
func (r *Round) Complete() bool { return r.haveColl && len(r.Contribs) == r.wantK }

// ContributorMetrics are the section 3 per-contributor figures for one
// collective round.
type ContributorMetrics struct {
	Contributor   int
	Down          time.Duration // t2 - t1_i
	Up            time.Duration // t4_i - t3
	Total         time.Duration // (t4_i - t1_i) - (t3 - t2)
	ArrivalRank   int           // 0 = arrived first
	DepartureRank int           // 0 = departed first
	ArrivalWait   time.Duration // t1_l - t1_i (l = last arriver)
	DepartureWait time.Duration // t4_i - t4_f (f = first departer)
}

// RoundMetrics is the full analysis of one collective round.
type RoundMetrics struct {
	Seq         uint32
	Per         []ContributorMetrics // one per contributor, indexed by rank order of contributor id
	LastArrival int                  // contributor that arrived last
	FirstDepart int                  // contributor that departed first
}

// AnalyzeRound computes the section 3 metrics for a complete round.
func AnalyzeRound(r *Round) (RoundMetrics, error) {
	if !r.Complete() {
		return RoundMetrics{}, fmt.Errorf("analysis: round %d incomplete (%d/%d contributors, collective=%v)",
			r.Seq, len(r.Contribs), r.wantK, r.haveColl)
	}
	ids := make([]int, 0, len(r.Contribs))
	for id := range r.Contribs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	t2 := r.Collective.Start
	t3 := r.Collective.End

	// Rank arrivals by t1 and departures by t4; ties break on id for
	// determinism.
	byArrival := append([]int(nil), ids...)
	sort.Slice(byArrival, func(a, b int) bool {
		ta, tb := r.Contribs[byArrival[a]].Start, r.Contribs[byArrival[b]].Start
		if ta != tb {
			return ta < tb
		}
		return byArrival[a] < byArrival[b]
	})
	byDeparture := append([]int(nil), ids...)
	sort.Slice(byDeparture, func(a, b int) bool {
		ta, tb := r.Contribs[byDeparture[a]].End, r.Contribs[byDeparture[b]].End
		if ta != tb {
			return ta < tb
		}
		return byDeparture[a] < byDeparture[b]
	})
	arrivalRank := make(map[int]int, len(ids))
	departureRank := make(map[int]int, len(ids))
	for rank, id := range byArrival {
		arrivalRank[id] = rank
	}
	for rank, id := range byDeparture {
		departureRank[id] = rank
	}
	last := byArrival[len(byArrival)-1]
	first := byDeparture[0]
	t1Last := r.Contribs[last].Start
	t4First := r.Contribs[first].End

	out := RoundMetrics{Seq: r.Seq, LastArrival: last, FirstDepart: first}
	for _, id := range ids {
		c := r.Contribs[id]
		out.Per = append(out.Per, ContributorMetrics{
			Contributor:   id,
			Down:          time.Duration(t2 - c.Start),
			Up:            time.Duration(c.End - t3),
			Total:         time.Duration((c.End - c.Start) - (t3 - t2)),
			ArrivalRank:   arrivalRank[id],
			DepartureRank: departureRank[id],
			ArrivalWait:   time.Duration(t1Last - c.Start),
			DepartureWait: time.Duration(c.End - t4First),
		})
	}
	return out, nil
}

// Joiner assembles rounds from the tuple streams of one collective
// wrapper's event collectors: k contributor collectors plus the collective
// collector. Because trace buffers are bounded, some rounds never
// complete; the joiner keeps at most maxPending partial rounds and evicts
// the oldest, counting them as lost.
type Joiner struct {
	k          int
	maxPending int
	pending    map[uint32]*Round
	order      []uint32 // insertion order for eviction
	emit       func(RoundMetrics)
	lost       uint64
}

// NewJoiner creates a joiner for a k-contributor collective. emit is
// called with the metrics of every completed round, in completion order.
func NewJoiner(k, maxPending int, emit func(RoundMetrics)) (*Joiner, error) {
	if k < 1 {
		return nil, fmt.Errorf("analysis: joiner: k %d < 1", k)
	}
	if maxPending < 1 {
		maxPending = 64
	}
	if emit == nil {
		return nil, fmt.Errorf("analysis: joiner: nil emit")
	}
	return &Joiner{k: k, maxPending: maxPending, pending: make(map[uint32]*Round), emit: emit}, nil
}

// Lost reports how many partial rounds were evicted.
func (j *Joiner) Lost() uint64 { return j.lost }

// Pending reports how many partial rounds are buffered.
func (j *Joiner) Pending() int { return len(j.pending) }

func (j *Joiner) round(seq uint32) *Round {
	r, ok := j.pending[seq]
	if !ok {
		r = &Round{Seq: seq, Contribs: make(map[int]collect.TraceTuple, j.k), wantK: j.k}
		j.pending[seq] = r
		j.order = append(j.order, seq)
		if len(j.pending) > j.maxPending {
			// Evict the oldest still-pending round.
			for len(j.order) > 0 {
				old := j.order[0]
				j.order = j.order[1:]
				if _, ok := j.pending[old]; ok && old != seq {
					delete(j.pending, old)
					j.lost++
					break
				}
			}
		}
	}
	return r
}

// AddCollective feeds the collective wrapper's tuple for its round.
func (j *Joiner) AddCollective(t collect.TraceTuple) {
	r := j.round(t.Seq)
	r.Collective = t
	r.haveColl = true
	j.finish(r)
}

// AddContributor feeds contributor i's tuple for its round.
func (j *Joiner) AddContributor(i int, t collect.TraceTuple) {
	r := j.round(t.Seq)
	r.Contribs[i] = t
	j.finish(r)
}

func (j *Joiner) finish(r *Round) {
	if !r.Complete() {
		return
	}
	delete(j.pending, r.Seq)
	if m, err := AnalyzeRound(r); err == nil {
		j.emit(m)
	}
}

// OrderCounter accumulates the arrival (or departure) order distribution:
// how many times each contributor held each rank, and in particular the
// last-arrival counts driving the load-balance monitor's weighted tree.
type OrderCounter struct {
	k      int
	counts [][]uint64 // [contributor][rank]
}

// NewOrderCounter creates a counter for k contributors.
func NewOrderCounter(k int) *OrderCounter {
	c := &OrderCounter{k: k, counts: make([][]uint64, k)}
	for i := range c.counts {
		c.counts[i] = make([]uint64, k)
	}
	return c
}

// Observe records that contributor i held the given rank.
func (c *OrderCounter) Observe(contributor, rank int) {
	if contributor < 0 || contributor >= c.k || rank < 0 || rank >= c.k {
		return
	}
	c.counts[contributor][rank]++
}

// Count returns how often contributor i held the given rank.
func (c *OrderCounter) Count(contributor, rank int) uint64 {
	if contributor < 0 || contributor >= c.k || rank < 0 || rank >= c.k {
		return 0
	}
	return c.counts[contributor][rank]
}

// LastCounts returns each contributor's count of last-place ranks.
func (c *OrderCounter) LastCounts() []uint64 {
	out := make([]uint64, c.k)
	for i := range c.counts {
		out[i] = c.counts[i][c.k-1]
	}
	return out
}

// Total returns the number of observations folded in per contributor slot.
func (c *OrderCounter) Total() uint64 {
	var n uint64
	for _, row := range c.counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}
