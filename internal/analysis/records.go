package analysis

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Fixed-size binary records for intermediate and final analysis results.
// These are what distributed analysis threads write to PastSet buffers and
// what the gather trees move to the front-end.
//
// The paper stores per-wrapper statistics in 24-byte result tuples; this
// reproduction carries the routing id and all five statistics in the
// record, which takes 28 bytes (documented in DESIGN.md).

// Latency kinds in a stats record.
const (
	KindDown = iota + 1
	KindUp
	KindTotal
	KindArrivalWait
	KindDepartureWait
	KindTCP
)

// KindName names a latency kind.
func KindName(kind int) string {
	switch kind {
	case KindDown:
		return "down"
	case KindUp:
		return "up"
	case KindTotal:
		return "total"
	case KindArrivalWait:
		return "arrival-wait"
	case KindDepartureWait:
		return "departure-wait"
	case KindTCP:
		return "tcp"
	default:
		return fmt.Sprintf("kind(%d)", kind)
	}
}

// StatsRecordSize is the encoded size of a StatsRecord.
const StatsRecordSize = 28

// StatsRecord is a per-wrapper statistics result tuple: which wrapper (by
// its event collector id), which latency kind, and the five statistics in
// microseconds.
type StatsRecord struct {
	ID     uint32 // event collector / wrapper id
	Kind   uint8  // KindDown..KindTCP
	Count  uint16 // saturating sample count
	Mean   float32
	Min    float32
	Max    float32
	Std    float32
	Median float32
}

// StatsRecordFrom converts a stream snapshot (samples in microseconds).
func StatsRecordFrom(id uint32, kind int, r Result) StatsRecord {
	count := r.Count
	if count > math.MaxUint16 {
		count = math.MaxUint16
	}
	return StatsRecord{
		ID:     id,
		Kind:   uint8(kind),
		Count:  uint16(count),
		Mean:   float32(r.Mean),
		Min:    float32(r.Min),
		Max:    float32(r.Max),
		Std:    float32(r.Std),
		Median: float32(r.Median),
	}
}

// Encode packs the record into a fresh slice.
func (r StatsRecord) Encode() []byte {
	buf := make([]byte, StatsRecordSize)
	binary.LittleEndian.PutUint32(buf[0:4], r.ID)
	buf[4] = r.Kind
	buf[5] = 0
	binary.LittleEndian.PutUint16(buf[6:8], r.Count)
	binary.LittleEndian.PutUint32(buf[8:12], math.Float32bits(r.Mean))
	binary.LittleEndian.PutUint32(buf[12:16], math.Float32bits(r.Min))
	binary.LittleEndian.PutUint32(buf[16:20], math.Float32bits(r.Max))
	binary.LittleEndian.PutUint32(buf[20:24], math.Float32bits(r.Std))
	binary.LittleEndian.PutUint32(buf[24:28], math.Float32bits(r.Median))
	return buf
}

// DecodeStatsRecord unpacks a stats record.
func DecodeStatsRecord(buf []byte) (StatsRecord, error) {
	if len(buf) < StatsRecordSize {
		return StatsRecord{}, fmt.Errorf("analysis: short stats record (%d bytes)", len(buf))
	}
	return StatsRecord{
		ID:     binary.LittleEndian.Uint32(buf[0:4]),
		Kind:   buf[4],
		Count:  binary.LittleEndian.Uint16(buf[6:8]),
		Mean:   math.Float32frombits(binary.LittleEndian.Uint32(buf[8:12])),
		Min:    math.Float32frombits(binary.LittleEndian.Uint32(buf[12:16])),
		Max:    math.Float32frombits(binary.LittleEndian.Uint32(buf[16:20])),
		Std:    math.Float32frombits(binary.LittleEndian.Uint32(buf[20:24])),
		Median: math.Float32frombits(binary.LittleEndian.Uint32(buf[24:28])),
	}, nil
}

// DecodeStatsRecords unpacks a concatenation of stats records.
func DecodeStatsRecords(buf []byte) ([]StatsRecord, error) {
	if len(buf)%StatsRecordSize != 0 {
		return nil, fmt.Errorf("analysis: payload %d bytes is not whole stats records", len(buf))
	}
	out := make([]StatsRecord, 0, len(buf)/StatsRecordSize)
	for off := 0; off < len(buf); off += StatsRecordSize {
		r, err := DecodeStatsRecord(buf[off : off+StatsRecordSize])
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// LastArrivalRecordSize is the encoded size of a LastArrivalRecord.
const LastArrivalRecordSize = 16

// LastArrivalRecord is the load-balance monitor's intermediate result: how
// many times a contributor arrived last at a collective wrapper.
type LastArrivalRecord struct {
	Node        uint32 // collective wrapper id (its collective EC id)
	Contributor uint16
	Count       uint64
}

// Encode packs the record into a fresh slice.
func (r LastArrivalRecord) Encode() []byte {
	buf := make([]byte, LastArrivalRecordSize)
	binary.LittleEndian.PutUint32(buf[0:4], r.Node)
	binary.LittleEndian.PutUint16(buf[4:6], r.Contributor)
	binary.LittleEndian.PutUint64(buf[8:16], r.Count)
	return buf
}

// DecodeLastArrivalRecord unpacks a last-arrival record.
func DecodeLastArrivalRecord(buf []byte) (LastArrivalRecord, error) {
	if len(buf) < LastArrivalRecordSize {
		return LastArrivalRecord{}, fmt.Errorf("analysis: short last-arrival record (%d bytes)", len(buf))
	}
	return LastArrivalRecord{
		Node:        binary.LittleEndian.Uint32(buf[0:4]),
		Contributor: binary.LittleEndian.Uint16(buf[4:6]),
		Count:       binary.LittleEndian.Uint64(buf[8:16]),
	}, nil
}

// DecodeLastArrivalRecords unpacks a concatenation of last-arrival
// records.
func DecodeLastArrivalRecords(buf []byte) ([]LastArrivalRecord, error) {
	if len(buf)%LastArrivalRecordSize != 0 {
		return nil, fmt.Errorf("analysis: payload %d bytes is not whole last-arrival records", len(buf))
	}
	out := make([]LastArrivalRecord, 0, len(buf)/LastArrivalRecordSize)
	for off := 0; off < len(buf); off += LastArrivalRecordSize {
		r, err := DecodeLastArrivalRecord(buf[off : off+LastArrivalRecordSize])
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
