// Snapshot/restore for the streaming-analysis state. The recovery
// checkpointer (internal/checkpoint) persists the statistics monitor's
// shadow state so a failed front end can resume from the last
// checkpoint plus a short archive suffix instead of a full replay. The
// contract here is behavioral equivalence, not bit-copying internals: a
// restored Stream or Joiner fed the same future samples produces
// exactly the output the original would have — that is what makes
// checkpointed recovery byte-identical to full replay.
package analysis

import (
	"fmt"
	"sort"

	"eventspace/internal/collect"
)

// StreamState is a Stream's portable snapshot. The ring is stored
// oldest-first, so the state is canonical: two streams that saw the
// same samples snapshot identically regardless of internal head
// position.
type StreamState struct {
	N      uint64
	Mean   float64
	M2     float64
	Min    float64
	Max    float64
	Window int
	Ring   []float64 // last min(N, Window) samples, oldest first
}

// State snapshots the stream.
func (s *Stream) State() StreamState {
	st := StreamState{
		N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max,
		Window: s.window,
	}
	if len(s.ring) < s.window {
		// Not yet full: arrival order is slice order.
		st.Ring = append(st.Ring, s.ring...)
	} else {
		// Full: the oldest sample sits at head.
		st.Ring = append(st.Ring, s.ring[s.head:]...)
		st.Ring = append(st.Ring, s.ring[:s.head]...)
	}
	return st
}

// NewStreamFrom rebuilds a stream from a snapshot. The restored stream
// is behaviorally identical to the snapshotted one: same statistics
// now, same outputs for any future sample sequence.
func NewStreamFrom(st StreamState) (*Stream, error) {
	window := st.Window
	if window < 1 {
		window = DefaultMedianWindow
	}
	if len(st.Ring) > window {
		return nil, fmt.Errorf("analysis: stream state ring %d exceeds window %d", len(st.Ring), window)
	}
	if uint64(len(st.Ring)) > st.N {
		return nil, fmt.Errorf("analysis: stream state ring %d exceeds sample count %d", len(st.Ring), st.N)
	}
	s := &Stream{
		n: st.N, mean: st.Mean, m2: st.M2, min: st.Min, max: st.Max,
		window: window,
	}
	// Oldest-first with head 0 reproduces the original eviction order:
	// the next insertion after the window fills replaces index 0.
	s.ring = append(s.ring, st.Ring...)
	s.sorted = append(s.sorted, st.Ring...)
	insertionSortFloat64s(s.sorted)
	return s, nil
}

// insertionSortFloat64s sorts in place; rings are at most a median
// window long, so simplicity beats sort.Float64s' interface costs.
func insertionSortFloat64s(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// ContribState is one contributor tuple buffered in a partial round.
type ContribState struct {
	ID    int32
	Tuple collect.TraceTuple
}

// RoundState is one partial round buffered in a Joiner.
type RoundState struct {
	Seq        uint32
	Collective collect.TraceTuple
	HaveColl   bool
	Contribs   []ContribState // sorted by contributor id
}

// JoinerState is a Joiner's portable snapshot: configuration, loss
// count, and the live partial rounds in insertion order. Stale
// insertion-order entries (rounds since completed or evicted) are
// compressed away, so the state is canonical.
type JoinerState struct {
	K          int
	MaxPending int
	Lost       uint64
	Pending    []RoundState
}

// State snapshots the joiner.
func (j *Joiner) State() JoinerState {
	st := JoinerState{K: j.k, MaxPending: j.maxPending, Lost: j.lost}
	taken := make(map[uint32]bool, len(j.pending))
	for _, seq := range j.order {
		r, ok := j.pending[seq]
		if !ok || taken[seq] {
			continue
		}
		taken[seq] = true
		rs := RoundState{Seq: r.Seq, Collective: r.Collective, HaveColl: r.haveColl}
		ids := make([]int, 0, len(r.Contribs))
		for id := range r.Contribs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			rs.Contribs = append(rs.Contribs, ContribState{ID: int32(id), Tuple: r.Contribs[id]})
		}
		st.Pending = append(st.Pending, rs)
	}
	return st
}

// Restore overwrites the joiner's buffered state from a snapshot while
// keeping its emit hook. The snapshot's k must match the joiner's.
func (j *Joiner) Restore(st JoinerState) error {
	if st.K != j.k {
		return fmt.Errorf("analysis: joiner state k=%d, joiner has k=%d", st.K, j.k)
	}
	if st.MaxPending >= 1 {
		j.maxPending = st.MaxPending
	}
	j.lost = st.Lost
	j.pending = make(map[uint32]*Round, len(st.Pending))
	j.order = j.order[:0]
	for _, rs := range st.Pending {
		if len(rs.Contribs) > j.k {
			return fmt.Errorf("analysis: joiner state round %d holds %d contributors, k=%d", rs.Seq, len(rs.Contribs), j.k)
		}
		r := &Round{Seq: rs.Seq, Collective: rs.Collective, haveColl: rs.HaveColl,
			Contribs: make(map[int]collect.TraceTuple, j.k), wantK: j.k}
		for _, c := range rs.Contribs {
			r.Contribs[int(c.ID)] = c.Tuple
		}
		j.pending[rs.Seq] = r
		j.order = append(j.order, rs.Seq)
	}
	return nil
}

// NewJoinerFrom rebuilds a joiner from a snapshot, emitting completed
// rounds through emit exactly as the original would have.
func NewJoinerFrom(st JoinerState, emit func(RoundMetrics)) (*Joiner, error) {
	j, err := NewJoiner(st.K, st.MaxPending, emit)
	if err != nil {
		return nil, err
	}
	if err := j.Restore(st); err != nil {
		return nil, err
	}
	return j, nil
}
