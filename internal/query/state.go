// Snapshot/restore for the continuous-query engine. A checkpoint
// captures everything a tick depends on — the retained tuple window,
// the watermark, and each standing query's anchor, streak, and armed
// flags — so a restored engine fed the archive suffix after the
// checkpoint fires exactly the alerts the original engine would have,
// resuming mid-streak. Snapshots are canonical: streaks are stored only
// when nonzero and fired flags only when set, sorted by group, because
// a zero/absent entry is behaviorally indistinguishable from a missing
// one (judge treats absence as zero, and the silent-group sweep only
// ever deletes).
package query

import (
	"fmt"
	"sort"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
)

// GroupStreak is one group's consecutive-true tick count.
type GroupStreak struct {
	Group uint16
	Count int32
}

// StandingState is one standing query's trigger state. Hash identifies
// the statement; restore refuses a state whose statements do not match
// the engine's, in order.
type StandingState struct {
	Hash     uint64
	Anchored bool
	LastTick hrtime.Stamp
	Streak   []GroupStreak // nonzero streaks, sorted by group
	Fired    []uint16      // groups with fired=true, sorted
}

// EngineState is an Engine's portable snapshot.
type EngineState struct {
	Expected  int
	Watermark hrtime.Stamp
	Seq       uint32
	Buf       []collect.TraceTuple // retained data tuples, arrival order
	Alerts    []collect.AlertTuple // alerts fired so far, firing order
	Queries   []StandingState      // registration order
}

// State snapshots the engine.
func (e *Engine) State() EngineState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EngineState{Expected: e.expected, Watermark: e.watermark, Seq: e.seq}
	st.Buf = append(st.Buf, e.buf...)
	st.Alerts = append(st.Alerts, e.alerts...)
	for _, q := range e.queries {
		qs := StandingState{Hash: q.hash, Anchored: q.anchored, LastTick: q.lastTick}
		groups := make([]uint16, 0, len(q.streak))
		for g, n := range q.streak {
			if n != 0 {
				groups = append(groups, g)
			}
		}
		sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
		for _, g := range groups {
			qs.Streak = append(qs.Streak, GroupStreak{Group: g, Count: int32(q.streak[g])})
		}
		for g, f := range q.fired {
			if f {
				qs.Fired = append(qs.Fired, g)
			}
		}
		sort.Slice(qs.Fired, func(i, j int) bool { return qs.Fired[i] < qs.Fired[j] })
		st.Queries = append(st.Queries, qs)
	}
	return st
}

// Restore overwrites the engine's evaluation state from a snapshot. The
// engine must already have the same standing statements registered in
// the same order — matched by statement hash — so the snapshot cannot
// be applied to a differently-configured engine.
func (e *Engine) Restore(st EngineState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(st.Queries) != len(e.queries) {
		return fmt.Errorf("query: state holds %d standing queries, engine has %d", len(st.Queries), len(e.queries))
	}
	for i, qs := range st.Queries {
		if qs.Hash != e.queries[i].hash {
			return fmt.Errorf("query: state query %d hash %#x does not match engine's %#x", i, qs.Hash, e.queries[i].hash)
		}
	}
	e.expected = st.Expected
	e.watermark = st.Watermark
	e.seq = st.Seq
	e.buf = append(e.buf[:0], st.Buf...)
	e.alerts = append(e.alerts[:0], st.Alerts...)
	for i, qs := range st.Queries {
		q := e.queries[i]
		q.anchored = qs.Anchored
		q.lastTick = qs.LastTick
		q.streak = make(map[uint16]int, len(qs.Streak))
		for _, gs := range qs.Streak {
			q.streak[gs.Group] = int(gs.Count)
		}
		q.fired = make(map[uint16]bool, len(qs.Fired))
		for _, g := range qs.Fired {
			q.fired[g] = true
		}
	}
	return nil
}

// ReplayFrom regenerates the alert stream from a checkpointed engine
// state plus the archive suffix after cur — the fast path equivalent of
// Replay over the whole archive. stmts must be the same statements, in
// the same order, that produced the state.
func ReplayFrom(r *archive.Reader, cur archive.Cursor, stmts []*Stmt, st EngineState) ([]collect.AlertTuple, error) {
	e := NewEngine(nil)
	for _, s := range stmts {
		if err := e.Register(s); err != nil {
			return nil, err
		}
	}
	if err := e.Restore(st); err != nil {
		return nil, err
	}
	var offerErr error
	_, err := r.ScanFrom(cur, archive.Query{}, func(t collect.TraceTuple) bool {
		if err := e.Offer(t); err != nil {
			offerErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = offerErr
	}
	return e.Alerts(), err
}
