package query

import (
	"reflect"
	"testing"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
	"eventspace/internal/paths"
)

// nullSink discards forwarded batches; pure-engine tests only care
// about the alert stream.
type nullSink struct{}

func (nullSink) AppendRaw([]byte) error { return nil }

func mustParse(t *testing.T, src string) *Stmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return s
}

// offerAt feeds one tuple with the given start stamp (and a tiny
// latency) through the replay path.
func offerAt(t *testing.T, e *Engine, ecid uint32, ret int16, start int64) {
	t.Helper()
	if err := e.Offer(collect.TraceTuple{
		ECID: ecid, Op: paths.OpRead, Ret: ret,
		Start: hrtime.Stamp(start), End: hrtime.Stamp(start + 10),
	}); err != nil {
		t.Fatal(err)
	}
}

func alertKeys(alerts []collect.AlertTuple) [][3]int64 {
	var out [][3]int64
	for _, a := range alerts {
		out = append(out, [3]int64{int64(a.Seq), int64(a.Group), int64(a.At)})
	}
	return out
}

// TestEngineEdgeTrigger: a standing alert fires once when its condition
// becomes true, stays silent while it remains true, and re-arms after a
// tick where it is false.
func TestEngineEdgeTrigger(t *testing.T) {
	e := NewEngine(nullSink{})
	stmt := mustParse(t, "alert when count() > 1 window 1us")
	if err := e.Register(stmt); err != nil {
		t.Fatal(err)
	}
	for _, start := range []int64{100, 600, 1000} {
		offerAt(t, e, 1, 0, start) // tick@1000: count 3 -> fire
	}
	offerAt(t, e, 1, 0, 1600)
	offerAt(t, e, 1, 0, 2000) // tick@2000: count 2, still true -> silent
	offerAt(t, e, 1, 0, 3500) // tick@3000: empty window -> false -> re-arm
	offerAt(t, e, 1, 0, 4000) // tick@4000: count 2 -> fire again

	got := alertKeys(e.Alerts())
	want := [][3]int64{{0, 0, 1000}, {1, 0, 4000}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alerts = %v, want %v", got, want)
	}
	for _, a := range e.Alerts() {
		if a.QueryHash != stmt.Hash() {
			t.Fatalf("alert hash %016x, want %016x", a.QueryHash, stmt.Hash())
		}
	}
}

// TestEngineForRounds: "for N rounds" requires N consecutive true
// ticks before firing, and a false tick resets the streak.
func TestEngineForRounds(t *testing.T) {
	e := NewEngine(nullSink{})
	if err := e.Register(mustParse(t, "alert when count() > 0 window 1us for 2 rounds")); err != nil {
		t.Fatal(err)
	}
	offerAt(t, e, 1, 0, 100)
	offerAt(t, e, 1, 0, 1000) // tick@1000: streak 1
	offerAt(t, e, 1, 0, 2000) // tick@2000: streak 2 -> fire
	offerAt(t, e, 1, 0, 3000) // tick@3000: streak 3, already fired
	offerAt(t, e, 1, 0, 4500) // tick@4000: empty window -> streak reset
	offerAt(t, e, 1, 0, 5000) // tick@5000: streak 1
	offerAt(t, e, 1, 0, 6000) // tick@6000: streak 2 -> fire

	got := alertKeys(e.Alerts())
	want := [][3]int64{{0, 0, 2000}, {1, 0, 6000}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alerts = %v, want %v", got, want)
	}
}

// TestEngineByGroup: grouped alerts track per-collector state; a group
// absent from a whole window loses its fired latch and may fire again.
func TestEngineByGroup(t *testing.T) {
	e := NewEngine(nullSink{})
	if err := e.Register(mustParse(t, "alert when errors() > 0 by ecid window 1us")); err != nil {
		t.Fatal(err)
	}
	offerAt(t, e, 1, -1, 100)
	offerAt(t, e, 2, 0, 200)
	offerAt(t, e, 2, -1, 600)
	offerAt(t, e, 1, 0, 1000) // tick@1000: both groups err -> fire ec1, ec2
	offerAt(t, e, 1, 0, 2000) // tick@2000: ec1 clean -> re-arm; ec2 silent -> state dropped
	offerAt(t, e, 2, -1, 2500)
	offerAt(t, e, 1, -1, 3000) // tick@3000: both err again -> fire ec1, ec2

	got := alertKeys(e.Alerts())
	want := [][3]int64{{0, 1, 1000}, {1, 2, 1000}, {2, 1, 3000}, {3, 2, 3000}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alerts = %v, want %v", got, want)
	}
}

func encodeBatch(ts []collect.TraceTuple) []byte {
	buf := make([]byte, len(ts)*collect.TupleSize)
	for i := range ts {
		ts[i].EncodeTo(buf[i*collect.TupleSize:])
	}
	return buf
}

// TestEngineLiveMatchesReplay is the determinism contract of DESIGN.md
// §14: alerts fired live while archiving must be reproduced exactly by
// (a) decoding the archived alert tuples and (b) re-running the same
// statements over the archived data tuples — on both archive formats.
func TestEngineLiveMatchesReplay(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format int
	}{
		{"row", archive.FormatRow},
		{"columnar", archive.FormatColumnar},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := archive.Create(archive.Options{
				Dir: dir, Format: tc.format, SegmentBytes: 600, BlockTuples: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			stmts := []*Stmt{
				mustParse(t, "alert when count() > 1 window 2us"),
				mustParse(t, "alert when errors() > 0 by ecid window 5us"),
			}
			eng := NewEngine(w)
			eng.SetExpected(3)
			for _, s := range stmts {
				if err := eng.Register(s); err != nil {
					t.Fatal(err)
				}
			}
			tuples := testTuples()
			for i := 0; i < len(tuples); i += 7 {
				end := i + 7
				if end > len(tuples) {
					end = len(tuples)
				}
				if err := eng.AppendRaw(encodeBatch(tuples[i:end])); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			live := eng.Alerts()
			if len(live) == 0 {
				t.Fatal("no alerts fired during the live run")
			}

			r, err := archive.OpenReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			archived, _, err := archive.ReplayAlerts(r, archive.Query{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(archived, live) {
				t.Errorf("archived alerts %v != live %v", archived, live)
			}
			regen, err := Replay(r, stmts, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(regen, live) {
				t.Errorf("regenerated alerts %v != live %v", regen, live)
			}
		})
	}
}

// TestEnginePruningInvisible: the engine's buffer pruning must never
// change results — feeding a long stream in one engine and the same
// stream through another must agree even as pruning kicks in.
func TestEnginePruningInvisible(t *testing.T) {
	const n = 5000
	mk := func() *Engine {
		e := NewEngine(nullSink{})
		if err := e.Register(mustParse(t, "alert when count() > 2 by ecid window 1us")); err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := mk()
	for i := 0; i < n; i++ {
		offerAt(t, a, uint32(1+i%2), 0, int64(i)*200)
	}
	b := mk()
	for i := 0; i < n; i++ {
		offerAt(t, b, uint32(1+i%2), 0, int64(i)*200)
	}
	if !reflect.DeepEqual(a.Alerts(), b.Alerts()) {
		t.Fatal("identical streams produced different alerts")
	}
	if len(a.Alerts()) == 0 {
		t.Fatal("expected alerts from the dense stream")
	}
}
