package query

import (
	"fmt"
	"time"
)

// Parse lexes, parses and type-checks one esql statement. The returned
// statement is canonicalized: defaults are applied (alert Window/Every,
// For), and Stmt.String() renders a form that re-parses to an equal
// statement.
func Parse(src string) (*Stmt, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.lex.next(); err != nil {
		return nil, fmt.Errorf("esql: %v", err)
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, fmt.Errorf("esql: %v", err)
	}
	if err := checkStmt(s); err != nil {
		return nil, fmt.Errorf("esql: %v", err)
	}
	return s, nil
}

// parser is the recursive-descent esql parser.
type parser struct {
	lex *lexer
}

// errf builds a positioned parse error.
func (p *parser) errf(format string, args ...any) error {
	return &lexError{p.lex.tok.pos, fmt.Sprintf(format, args...)}
}

// advance consumes the current token.
func (p *parser) advance() error { return p.lex.next() }

// isKeyword reports whether the current token is the given keyword.
func (p *parser) isKeyword(kw string) bool {
	return p.lex.tok.kind == tokIdent && p.lex.tok.text == kw
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %q", kw)
	}
	return p.advance()
}

// parseStmt parses a full statement and requires EOF after it.
func (p *parser) parseStmt() (*Stmt, error) {
	s := &Stmt{}
	switch {
	case p.isKeyword("select"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.parseSelectList(s); err != nil {
			return nil, err
		}
		if p.isKeyword("where") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Where = e
		}
	case p.isKeyword("alert"):
		s.Alert = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("when"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.When = e
	default:
		return nil, p.errf("expected \"select\" or \"alert\"")
	}
	if err := p.parseClauses(s); err != nil {
		return nil, err
	}
	if p.lex.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	return s, nil
}

// parseSelectList parses `*` or a comma-separated list of aggregate
// calls.
func (p *parser) parseSelectList(s *Stmt) error {
	if p.lex.tok.kind == tokStar {
		s.Star = true
		return p.advance()
	}
	for {
		if p.lex.tok.kind != tokIdent {
			return p.errf("expected an aggregate call in the select list")
		}
		kind, ok := aggByName(p.lex.tok.text)
		if !ok {
			return p.errf("unknown aggregate %q", p.lex.tok.text)
		}
		if err := p.advance(); err != nil {
			return err
		}
		agg, err := p.parseAggCall(kind)
		if err != nil {
			return err
		}
		s.Cols = append(s.Cols, agg)
		if p.lex.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

// parseClauses parses the trailing clause list in any order: by,
// window, every, for ... rounds, limit. Duplicates are rejected.
func (p *parser) parseClauses(s *Stmt) error {
	seen := map[string]bool{}
	for p.lex.tok.kind == tokIdent {
		kw := p.lex.tok.text
		switch kw {
		case "by", "window", "every", "for", "limit":
			if seen[kw] {
				return p.errf("duplicate %q clause", kw)
			}
			seen[kw] = true
		default:
			return p.errf("unexpected %q", kw)
		}
		if err := p.advance(); err != nil {
			return err
		}
		switch kw {
		case "by":
			if p.lex.tok.kind != tokIdent {
				return p.errf("expected a field after \"by\"")
			}
			f, ok := fieldByName(p.lex.tok.text)
			if !ok {
				return p.errf("unknown field %q", p.lex.tok.text)
			}
			s.By = f
			if err := p.advance(); err != nil {
				return err
			}
		case "window", "every":
			if p.lex.tok.kind != tokDur {
				return p.errf("expected a duration after %q", kw)
			}
			if p.lex.tok.i <= 0 {
				return p.errf("%q duration must be positive", kw)
			}
			if kw == "window" {
				s.Window = time.Duration(p.lex.tok.i)
			} else {
				s.Every = time.Duration(p.lex.tok.i)
			}
			if err := p.advance(); err != nil {
				return err
			}
		case "for":
			if p.lex.tok.kind != tokInt || p.lex.tok.i <= 0 {
				return p.errf("expected a positive round count after \"for\"")
			}
			s.For = int(p.lex.tok.i)
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectKeyword("rounds"); err != nil {
				return err
			}
		case "limit":
			if p.lex.tok.kind != tokInt || p.lex.tok.i <= 0 {
				return p.errf("expected a positive count after \"limit\"")
			}
			s.Limit = int(p.lex.tok.i)
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseExpr parses a boolean expression (lowest precedence: or).
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: OpOr, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: OpAnd, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parseCmp()
}

// parseCmp parses an additive expression optionally followed by one
// comparison or set-membership operator.
func (p *parser) parseCmp() (Expr, error) {
	x, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	var op BinOp
	switch p.lex.tok.kind {
	case tokEq:
		op = OpEq
	case tokNe:
		op = OpNe
	case tokLt:
		op = OpLt
	case tokLe:
		op = OpLe
	case tokGt:
		op = OpGt
	case tokGe:
		op = OpGe
	case tokIdent:
		neg := false
		if p.lex.tok.text == "not" {
			// `x not in (...)`: peek past the not for the in.
			nxt, err := p.lex.peekTok()
			if err != nil {
				return nil, err
			}
			if nxt.kind != tokIdent || nxt.text != "in" {
				return x, nil
			}
			neg = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.lex.tok.text != "in" {
			return x, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		list, err := p.parseLitList()
		if err != nil {
			return nil, err
		}
		return &In{X: x, Neg: neg, List: list}, nil
	default:
		return x, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	y, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, X: x, Y: y}, nil
}

func (p *parser) parseSum() (Expr, error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.lex.tok.kind == tokPlus || p.lex.tok.kind == tokMinus {
		op := OpAdd
		if p.lex.tok.kind == tokMinus {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseTerm() (Expr, error) {
	x, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.lex.tok.kind == tokStar || p.lex.tok.kind == tokSlash {
		op := OpMul
		if p.lex.tok.kind == tokSlash {
			op = OpDiv
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

// parseFactor parses a literal, field reference, aggregate call,
// negated factor, or parenthesized expression.
func (p *parser) parseFactor() (Expr, error) {
	tok := p.lex.tok
	switch tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.lex.tok.kind != tokRParen {
			return nil, p.errf("expected ')'")
		}
		return e, p.advance()
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		lit, ok := x.(*Lit)
		if !ok || !lit.Val.numeric() {
			return nil, p.errf("'-' must precede a numeric literal")
		}
		lit.Val.I = -lit.Val.I
		lit.Val.F = -lit.Val.F
		return lit, nil
	case tokInt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: Value{K: KInt, I: tok.i}}, nil
	case tokFloat:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: Value{K: KFloat, F: tok.f}}, nil
	case tokDur:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: Value{K: KDur, I: tok.i}}, nil
	case tokIdent:
		// Aggregate call, field reference, or op-kind literal.
		if kind, ok := aggByName(tok.text); ok {
			nxt, err := p.lex.peekTok()
			if err != nil {
				return nil, err
			}
			if nxt.kind == tokLParen {
				if err := p.advance(); err != nil {
					return nil, err
				}
				return p.parseAggCall(kind)
			}
		}
		if f, ok := fieldByName(tok.text); ok {
			return &FieldRef{F: f}, p.advance()
		}
		if op, ok := opLiteral(tok.text); ok {
			return &Lit{Val: Value{K: KOp, I: int64(op)}}, p.advance()
		}
		return nil, p.errf("unknown identifier %q", tok.text)
	}
	return nil, p.errf("expected an expression")
}

// parseAggCall parses `(...)` after an aggregate name: an optional
// field argument and an optional private-window duration.
func (p *parser) parseAggCall(kind AggKind) (*Agg, error) {
	if p.lex.tok.kind != tokLParen {
		return nil, p.errf("expected '(' after %q", kind.String())
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	agg := &Agg{Kind: kind}
	if p.lex.tok.kind == tokIdent {
		f, ok := fieldByName(p.lex.tok.text)
		if !ok {
			return nil, p.errf("unknown field %q", p.lex.tok.text)
		}
		agg.Arg = f
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.lex.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.lex.tok.kind == tokDur {
		if p.lex.tok.i <= 0 {
			return nil, p.errf("aggregate window must be positive")
		}
		agg.Window = time.Duration(p.lex.tok.i)
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.lex.tok.kind != tokRParen {
		return nil, p.errf("expected ')' in %s(...)", kind.String())
	}
	return agg, p.advance()
}

// parseLitList parses `( lit, lit, ... )` for set membership.
func (p *parser) parseLitList() ([]Value, error) {
	if p.lex.tok.kind != tokLParen {
		return nil, p.errf("expected '(' after \"in\"")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []Value
	for {
		tok := p.lex.tok
		var v Value
		switch tok.kind {
		case tokInt:
			v = Value{K: KInt, I: tok.i}
		case tokFloat:
			v = Value{K: KFloat, F: tok.f}
		case tokDur:
			v = Value{K: KDur, I: tok.i}
		case tokIdent:
			op, ok := opLiteral(tok.text)
			if !ok {
				return nil, p.errf("unknown value %q in set", tok.text)
			}
			v = Value{K: KOp, I: int64(op)}
		default:
			return nil, p.errf("expected a literal in set")
		}
		out = append(out, v)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.lex.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.lex.tok.kind != tokRParen {
		return nil, p.errf("expected ')' closing set")
	}
	return out, p.advance()
}
