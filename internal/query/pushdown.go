package query

import (
	"sort"

	"eventspace/internal/archive"
	"eventspace/internal/paths"
)

// Pushdown compiles the statement's predicate into a conservative
// archive.Query: every tuple the statement can match also matches the
// returned query, so the archive may use it to skip segments (header
// index) and columnar blocks (dictionaries) without losing rows. The
// extraction is honest about its limits — anything it cannot prove
// becomes "unconstrained", never "excluded":
//
//   - ecid ==/in and op ==/in literals constrain ECIDs / Ops;
//   - start comparisons against literals constrain the stamp range,
//     and end <= Y implies start <= Y (an operation starts before it
//     ends), so it bounds MaxStamp too;
//   - "and" intersects both sides' constraints; "or" takes the convex
//     hull (a union of sets, the looser of each bound);
//   - "not", latency, ret, seq, arithmetic over fields, and anything
//     else drop to unconstrained.
//
// The evaluator always re-applies the exact predicate, so a loose
// pushdown costs only scan time, never correctness. Alert statements
// push nothing down: the engine needs the whole stream.
func (s *Stmt) Pushdown() archive.Query {
	if s.Alert || s.Where == nil {
		return archive.Query{}
	}
	return extract(s.Where).query()
}

// constraint is the lattice the extractor works in. A "has" flag false
// means that dimension is unconstrained (the universe); true with an
// empty set means provably no match — still sound, though query()
// degrades it to unconstrained because archive.Query cannot express an
// empty filter. Bounds are inclusive on Start; min 0 and max <= 0 mean
// unbounded (stamps are non-negative).
type constraint struct {
	hasECIDs bool
	ecids    []uint32
	hasOps   bool
	ops      []paths.OpKind
	min, max int64
}

// universe is the unconstrained element.
func universe() constraint { return constraint{} }

// extract walks a row predicate bottom-up.
func extract(e Expr) constraint {
	switch n := e.(type) {
	case *Binary:
		switch n.Op {
		case OpAnd:
			return extract(n.X).and(extract(n.Y))
		case OpOr:
			return extract(n.X).or(extract(n.Y))
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			return extractCmp(n)
		}
	case *In:
		if n.Neg {
			return universe()
		}
		f, ok := n.X.(*FieldRef)
		if !ok {
			return universe()
		}
		switch f.F {
		case FieldECID:
			c := constraint{hasECIDs: true}
			for _, v := range n.List {
				id, ok := asECID(v)
				if !ok {
					return universe()
				}
				c.ecids = append(c.ecids, id)
			}
			return c
		case FieldOp:
			c := constraint{hasOps: true}
			for _, v := range n.List {
				c.ops = append(c.ops, paths.OpKind(v.I))
			}
			return c
		}
	}
	return universe()
}

// extractCmp handles one comparison leaf. The field may sit on either
// side; a flipped operand order flips the operator.
func extractCmp(n *Binary) constraint {
	f, lit := leafOperands(n.X, n.Y)
	op := n.Op
	if f == nil {
		if f, lit = leafOperands(n.Y, n.X); f == nil {
			return universe()
		}
		op = flipCmp(op)
	}
	if op == OpNe {
		return universe()
	}
	v := lit.Val
	switch f.F {
	case FieldECID:
		if op != OpEq {
			return universe()
		}
		id, ok := asECID(v)
		if !ok {
			return universe()
		}
		return constraint{hasECIDs: true, ecids: []uint32{id}}
	case FieldOp:
		if op != OpEq {
			return universe()
		}
		return constraint{hasOps: true, ops: []paths.OpKind{paths.OpKind(v.I)}}
	case FieldStart:
		if v.K == KFloat {
			return universe()
		}
		switch op {
		case OpEq:
			return constraint{min: v.I, max: v.I}
		case OpGe:
			return constraint{min: v.I}
		case OpGt:
			return constraint{min: v.I + 1}
		case OpLe:
			return constraint{max: v.I}
		case OpLt:
			return constraint{max: v.I - 1}
		}
	case FieldEnd:
		if v.K == KFloat {
			return universe()
		}
		// End >= Start, so an upper bound on End bounds Start too. A
		// lower bound on End says nothing about Start.
		switch op {
		case OpEq, OpLe:
			return constraint{max: v.I}
		case OpLt:
			return constraint{max: v.I - 1}
		}
	}
	return universe()
}

// leafOperands matches a (field, literal) comparison shape.
func leafOperands(x, y Expr) (*FieldRef, *Lit) {
	f, ok := x.(*FieldRef)
	if !ok {
		return nil, nil
	}
	l, ok := y.(*Lit)
	if !ok {
		return nil, nil
	}
	return f, l
}

// flipCmp mirrors a comparison across its operands (10 < start becomes
// start > 10).
func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// asECID converts an integer literal into a collector id if it fits.
func asECID(v Value) (uint32, bool) {
	if v.K != KInt || v.I < 0 || v.I > int64(^uint32(0)) {
		return 0, false
	}
	return uint32(v.I), true
}

// and intersects two constraints: both must hold.
func (c constraint) and(d constraint) constraint {
	out := constraint{}
	out.hasECIDs, out.ecids = intersectU32(c.hasECIDs, c.ecids, d.hasECIDs, d.ecids)
	out.hasOps, out.ops = intersectOps(c.hasOps, c.ops, d.hasOps, d.ops)
	out.min = c.min
	if d.min > out.min {
		out.min = d.min
	}
	switch {
	case c.max <= 0:
		out.max = d.max
	case d.max <= 0:
		out.max = c.max
	case d.max < c.max:
		out.max = d.max
	default:
		out.max = c.max
	}
	return out
}

// or hulls two constraints: either may hold, so each dimension widens
// to cover both sides.
func (c constraint) or(d constraint) constraint {
	out := constraint{}
	if c.hasECIDs && d.hasECIDs {
		out.hasECIDs = true
		out.ecids = append(append([]uint32(nil), c.ecids...), d.ecids...)
	}
	if c.hasOps && d.hasOps {
		out.hasOps = true
		out.ops = append(append([]paths.OpKind(nil), c.ops...), d.ops...)
	}
	out.min = c.min
	if d.min < out.min {
		out.min = d.min
	}
	if c.max > 0 && d.max > 0 {
		out.max = c.max
		if d.max > out.max {
			out.max = d.max
		}
	}
	return out
}

func intersectU32(hasA bool, a []uint32, hasB bool, b []uint32) (bool, []uint32) {
	if !hasA {
		return hasB, append([]uint32(nil), b...)
	}
	if !hasB {
		return true, append([]uint32(nil), a...)
	}
	set := make(map[uint32]struct{}, len(b))
	for _, v := range b {
		set[v] = struct{}{}
	}
	var out []uint32
	for _, v := range a {
		if _, ok := set[v]; ok {
			out = append(out, v)
		}
	}
	return true, out
}

func intersectOps(hasA bool, a []paths.OpKind, hasB bool, b []paths.OpKind) (bool, []paths.OpKind) {
	if !hasA {
		return hasB, append([]paths.OpKind(nil), b...)
	}
	if !hasB {
		return true, append([]paths.OpKind(nil), a...)
	}
	set := make(map[paths.OpKind]struct{}, len(b))
	for _, v := range b {
		set[v] = struct{}{}
	}
	var out []paths.OpKind
	for _, v := range a {
		if _, ok := set[v]; ok {
			out = append(out, v)
		}
	}
	return true, out
}

// query lowers the constraint into the archive's filter shape. An empty
// constrained set cannot be expressed (archive.Query reads empty as
// "all"), so it relaxes to unconstrained — still a superset.
func (c constraint) query() archive.Query {
	q := archive.Query{}
	if c.min > 0 {
		q.MinStamp = c.min
	}
	if c.max > 0 {
		q.MaxStamp = c.max
	}
	if c.hasECIDs && len(c.ecids) > 0 {
		q.ECIDs = dedupU32(c.ecids)
	}
	if c.hasOps && len(c.ops) > 0 {
		q.Ops = dedupOps(c.ops)
	}
	return q
}

func dedupU32(in []uint32) []uint32 {
	out := append([]uint32(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

func dedupOps(in []paths.OpKind) []paths.OpKind {
	out := append([]paths.OpKind(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}
