package query

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eventspace/internal/collect"
)

var update = flag.Bool("update", false, "rewrite the golden corpus output")

// readCorpus returns the corpus statements (including the '!'-prefixed
// must-fail entries, prefix kept).
func readCorpus(t testing.TB) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "corpus.esql"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}

// renderGolden evaluates every corpus statement against the fixture
// archive and renders the pinned output.
func renderGolden(t *testing.T, srcs []string) string {
	r := writeFixtureArchive(t, t.TempDir(), 0, 512)
	var b strings.Builder
	for _, src := range srcs {
		mustFail := strings.HasPrefix(src, "!")
		if mustFail {
			src = strings.TrimSpace(strings.TrimPrefix(src, "!"))
		}
		fmt.Fprintf(&b, ">> %s\n", src)
		stmt, err := Parse(src)
		if err != nil {
			if !mustFail {
				t.Errorf("corpus statement %q failed to parse: %v", src, err)
			}
			fmt.Fprintf(&b, "error: %v\n\n", err)
			continue
		}
		if mustFail {
			t.Errorf("corpus statement %q parsed but was marked must-fail", src)
		}
		fmt.Fprintf(&b, "stmt: %s\n", stmt)
		pq := stmt.Pushdown()
		fmt.Fprintf(&b, "push: ecids=%v ops=%v min=%d max=%d\n", pq.ECIDs, pq.Ops, pq.MinStamp, pq.MaxStamp)
		switch {
		case stmt.Alert:
			fmt.Fprintf(&b, "hash: %016x\n", stmt.Hash())
			alerts, err := Replay(r, []*Stmt{stmt}, 3)
			if err != nil {
				t.Errorf("replay %q: %v", src, err)
				continue
			}
			for _, a := range alerts {
				fmt.Fprintf(&b, "alert: seq=%d group=%d at=%d\n", a.Seq, a.Group, a.At)
			}
			fmt.Fprintf(&b, "%d alerts\n", len(alerts))
		case stmt.Star:
			stats, err := Scan(r, stmt, func(tu collect.TraceTuple) bool {
				fmt.Fprintf(&b, "row: ec=%d op=%s ret=%d seq=%d start=%d end=%d\n",
					tu.ECID, tu.Op, tu.Ret, tu.Seq, tu.Start, tu.End)
				return true
			})
			if err != nil {
				t.Errorf("scan %q: %v", src, err)
				continue
			}
			fmt.Fprintf(&b, "%d matched, %d scanned, %d/%d segments skipped\n",
				stats.TuplesMatched, stats.TuplesScanned, stats.SegmentsSkipped, stats.Segments)
		default:
			res, stats, err := Run(r, stmt)
			if err != nil {
				t.Errorf("run %q: %v", src, err)
				continue
			}
			fmt.Fprintf(&b, "cols: %s\n", strings.Join(res.Cols, " | "))
			for _, row := range res.Rows {
				var vals []string
				for _, v := range row.Vals {
					vals = append(vals, v.String())
				}
				fmt.Fprintf(&b, "row: group=%d bucket=%d  %s\n", row.Group, row.Bucket, strings.Join(vals, " | "))
			}
			fmt.Fprintf(&b, "%d matched, %d/%d segments skipped\n",
				stats.TuplesMatched, stats.SegmentsSkipped, stats.Segments)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenCorpus pins the parser, canonicalizer, pushdown extractor
// and evaluator end to end: every corpus statement's canonical form,
// extracted archive query, and result rows over the fixture archive.
// Refresh with `go test ./internal/query -run Golden -update`.
func TestGoldenCorpus(t *testing.T) {
	got := renderGolden(t, readCorpus(t))
	goldenPath := filepath.Join("testdata", "corpus.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden corpus output changed (re-run with -update if intended)\n--- got ---\n%s", got)
	}
}

// TestCanonicalRoundTrip: for every parsing corpus statement, the
// canonical rendering re-parses to the same canonical rendering and the
// same hash (the identity recorded in alert tuples).
func TestCanonicalRoundTrip(t *testing.T) {
	for _, src := range readCorpus(t) {
		if strings.HasPrefix(src, "!") {
			continue
		}
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		canon := stmt.String()
		stmt2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical %q (from %q) does not re-parse: %v", canon, src, err)
		}
		if got := stmt2.String(); got != canon {
			t.Errorf("canonical not a fixed point: %q -> %q", canon, got)
		}
		if stmt2.Hash() != stmt.Hash() {
			t.Errorf("hash changed across round trip of %q", src)
		}
	}
}

// FuzzParseQuery fuzzes the parser, seeded with the corpus: any input
// that parses must canonicalize to a fixed point that re-parses.
func FuzzParseQuery(f *testing.F) {
	for _, src := range readCorpus(f) {
		f.Add(strings.TrimSpace(strings.TrimPrefix(src, "!")))
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		canon := stmt.String()
		stmt2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical %q (from %q) does not re-parse: %v", canon, src, err)
		}
		if got := stmt2.String(); got != canon {
			t.Fatalf("canonical not a fixed point: %q -> %q (from %q)", canon, got, src)
		}
	})
}
