package query

import (
	"fmt"
	"sort"
	"sync"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
)

// Sink receives raw tuple batches downstream of the engine. It is the
// same seam the scope puller writes archives through (escope.RawSink);
// *archive.Writer satisfies it. The engine holds one structurally so it
// can interpose on the live stream without importing the scope layer.
type Sink interface {
	AppendRaw(data []byte) error
}

// Engine evaluates standing continuous queries over a tuple stream.
//
// The engine sits between the scope puller and the archive writer: every
// raw batch is forwarded downstream first (so the archive records the
// exact arrival sequence), then evaluated. Evaluation is a pure function
// of that sequence — ticks derive from a watermark over tuple Start
// stamps, never from wall-clock — so replaying the archived data tuples
// through an identically-configured engine regenerates the identical
// alert stream, byte for byte. Fired alerts are appended downstream as
// OpAlert control tuples and retained for Alerts().
//
// Engine methods are safe for one producer goroutine; the virtual
// scheduler serializes pull rounds, so no internal locking is needed
// beyond protecting Alerts() readers.
type Engine struct {
	mu   sync.Mutex
	sink Sink // downstream raw store; nil for replay-only engines

	queries  []*standing
	expected int // coverage() denominator: the collector roster size

	buf       []collect.TraceTuple // retained data tuples, arrival order
	maxWindow int64                // widest window any query looks back
	watermark hrtime.Stamp         // running max of tuple Start stamps

	seq     uint32 // dense per-engine alert sequence
	alerts  []collect.AlertTuple
	onAlert func(collect.AlertTuple)

	enc    []byte // reused alert-tuple encode buffer
	opEval *metrics.Op
}

// standing is one registered alert statement and its trigger state.
type standing struct {
	stmt *Stmt
	hash uint64

	anchored bool         // lastTick was anchored at the first tuple
	lastTick hrtime.Stamp // last evaluated tick
	streak   map[uint16]int
	fired    map[uint16]bool
}

// NewEngine builds an engine that forwards raw batches to sink (nil for
// a replay-only engine that just accumulates alerts).
func NewEngine(sink Sink) *Engine {
	return &Engine{sink: sink}
}

// SetExpected sets the coverage() denominator — the number of collectors
// expected to contribute tuples (live: the registry size; replay: the
// archived metadata's collector count).
func (e *Engine) SetExpected(n int) {
	e.mu.Lock()
	e.expected = n
	e.mu.Unlock()
}

// UseMetrics accounts per-batch evaluation cost in reg under
// KindQuery, tagged with name (nil disables).
func (e *Engine) UseMetrics(reg *metrics.Registry, name string) {
	if reg == nil {
		return
	}
	e.mu.Lock()
	e.opEval = reg.Op(metrics.KindQuery, "query-eval("+name+")")
	e.mu.Unlock()
}

// OnAlert installs a callback invoked inline as each alert fires, after
// it is archived. Callbacks must not block.
func (e *Engine) OnAlert(fn func(collect.AlertTuple)) {
	e.mu.Lock()
	e.onAlert = fn
	e.mu.Unlock()
}

// Register adds a standing alert statement. Only alert statements run
// continuously; selects are one-shot archive queries.
func (e *Engine) Register(s *Stmt) error {
	if !s.Alert {
		return fmt.Errorf("query: only alert statements run continuously (got %q)", s)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries = append(e.queries, &standing{
		stmt:   s,
		hash:   s.Hash(),
		streak: make(map[uint16]int),
		fired:  make(map[uint16]bool),
	})
	if w := int64(s.Window); w > e.maxWindow {
		e.maxWindow = w
	}
	for _, w := range privateWindows(s.When) {
		if int64(w) > e.maxWindow {
			e.maxWindow = int64(w)
		}
	}
	return nil
}

// privateWindows collects the private aggregate windows in an alert
// condition (median(latency, 1m) style), which bound buffer retention.
func privateWindows(e Expr) []int64 {
	var out []int64
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *Agg:
			if n.Window > 0 {
				out = append(out, int64(n.Window))
			}
		case *Not:
			walk(n.X)
		case *In:
			walk(n.X)
		case *Binary:
			walk(n.X)
			walk(n.Y)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// Alerts returns the alerts fired so far, in firing order.
func (e *Engine) Alerts() []collect.AlertTuple {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]collect.AlertTuple(nil), e.alerts...)
}

// AppendRaw forwards the batch downstream, then evaluates it. It is the
// escope.RawSink seam: installing the engine as the puller's sink makes
// every gathered batch flow through the standing queries.
func (e *Engine) AppendRaw(data []byte) error {
	if e.sink != nil {
		if err := e.sink.AppendRaw(data); err != nil {
			return err
		}
	}
	tuples, err := collect.DecodeAll(data)
	if err != nil {
		return fmt.Errorf("query: %v", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	start := hrtime.Now()
	defer func() {
		e.opEval.Record(hrtime.Since(start), len(data), nil)
	}()
	for _, t := range tuples {
		if err := e.offer(t); err != nil {
			return err
		}
	}
	return nil
}

// Offer evaluates one already-decoded tuple without forwarding it —
// the replay path, where the tuples come back out of an archive.
func (e *Engine) Offer(t collect.TraceTuple) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.offer(t)
}

// offer ingests one tuple: control tuples (including archived alerts)
// are ignored, so replaying an archive that already holds alert tuples
// regenerates the stream from the data tuples alone.
func (e *Engine) offer(t collect.TraceTuple) error {
	if t.ECID == collect.ControlECID {
		return nil
	}
	e.buf = append(e.buf, t)
	if t.Start > e.watermark {
		e.watermark = t.Start
	}
	for _, st := range e.queries {
		if err := e.advance(st); err != nil {
			return err
		}
	}
	e.prune()
	return nil
}

// advance fires every tick the watermark has crossed for one standing
// query. Ticks are the multiples of the query's "every" interval; the
// first observed tuple anchors lastTick so a stream starting at a large
// stamp does not replay ticks from the epoch.
func (e *Engine) advance(st *standing) error {
	every := int64(st.stmt.Every)
	if !st.anchored {
		st.anchored = true
		st.lastTick = e.watermark - e.watermark%every
	}
	for e.watermark >= st.lastTick+every {
		st.lastTick += every
		if err := e.tick(st, st.lastTick); err != nil {
			return err
		}
	}
	return nil
}

// tick evaluates one standing query at tick stamp now.
func (e *Engine) tick(st *standing, now hrtime.Stamp) error {
	window := int64(st.stmt.Window)
	lo := now - window
	// One pass collects the in-window tuples across all groups; the
	// grouped case then splits them by ECID.
	var inWin []collect.TraceTuple
	for _, t := range e.buf {
		if t.Start > lo && t.Start <= now {
			inWin = append(inWin, t)
		}
	}
	env := &aggEnv{all: e.buf, windowAll: inWin, tick: now, expected: e.expected}
	present := make(map[uint16]bool)
	if st.stmt.By == FieldECID {
		groups := make(map[uint16][]collect.TraceTuple)
		var order []uint16
		for _, t := range inWin {
			if t.ECID > 0xffff {
				return fmt.Errorf("query: ecid %d too large to group by", t.ECID)
			}
			g := uint16(t.ECID)
			if _, ok := groups[g]; !ok {
				order = append(order, g)
			}
			groups[g] = append(groups[g], t)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, g := range order {
			present[g] = true
			env.group = groups[g]
			if err := e.judge(st, g, now, env); err != nil {
				return err
			}
		}
	} else {
		present[0] = true
		env.group = inWin
		if err := e.judge(st, 0, now, env); err != nil {
			return err
		}
	}
	// Groups that fell silent lose their streak and re-arm: a condition
	// cannot be "sustained" by absence.
	for g := range st.streak {
		if !present[g] {
			delete(st.streak, g)
		}
	}
	for g := range st.fired {
		if !present[g] {
			delete(st.fired, g)
		}
	}
	return nil
}

// judge evaluates the condition for one group at one tick, maintains
// the consecutive-tick streak, and fires edge-triggered alerts: the
// alert fires once when the streak reaches the "for N rounds" bound and
// re-arms only after the condition goes false.
func (e *Engine) judge(st *standing, g uint16, now hrtime.Stamp, env *aggEnv) error {
	if !evalWhen(st.stmt.When, env).Bool() {
		st.streak[g] = 0
		st.fired[g] = false
		return nil
	}
	st.streak[g]++
	if st.streak[g] < st.stmt.For || st.fired[g] {
		return nil
	}
	st.fired[g] = true
	return e.fire(st, g, now)
}

// fire emits one alert: append it downstream as an OpAlert control
// tuple, retain it, bump the dense sequence, and notify the callback.
func (e *Engine) fire(st *standing, g uint16, now hrtime.Stamp) error {
	a := collect.AlertTuple{QueryHash: st.hash, Group: g, Seq: e.seq, At: now}
	e.seq++
	e.alerts = append(e.alerts, a)
	if e.sink != nil {
		if cap(e.enc) < collect.TupleSize {
			e.enc = make([]byte, collect.TupleSize)
		}
		e.enc = e.enc[:collect.TupleSize]
		collect.EncodeAlert(a).EncodeTo(e.enc)
		if err := e.sink.AppendRaw(e.enc); err != nil {
			return err
		}
	}
	if e.onAlert != nil {
		e.onAlert(a)
	}
	return nil
}

// prune drops retained tuples no future tick can see. A tuple with
// Start s is visible to a tick T when T-W < s <= T for some window W;
// future ticks all exceed the oldest query's lastTick, so anything at
// or before minLastTick - maxWindow is dead. Pruning is amortized: it
// runs only when the buffer has doubled past the live region.
func (e *Engine) prune() {
	if len(e.queries) == 0 {
		e.buf = e.buf[:0]
		return
	}
	if len(e.buf) < 1024 {
		return
	}
	min := e.queries[0].lastTick
	for _, st := range e.queries[1:] {
		if st.lastTick < min {
			min = st.lastTick
		}
	}
	horizon := min - e.maxWindow
	live := 0
	for _, t := range e.buf {
		if t.Start > horizon {
			live++
		}
	}
	if live*2 > len(e.buf) {
		return
	}
	kept := e.buf[:0]
	for _, t := range e.buf {
		if t.Start > horizon {
			kept = append(kept, t)
		}
	}
	e.buf = kept
}

// Replay regenerates the alert stream an engine with the given standing
// statements would have produced, from an archive's data tuples alone.
// expected is the coverage() roster size (the archived metadata's
// collector count). Archived alert tuples are ignored on the way in, so
// the result can be compared against them: a faithful archive replays
// to the exact same stream.
func Replay(r *archive.Reader, stmts []*Stmt, expected int) ([]collect.AlertTuple, error) {
	e := NewEngine(nil)
	e.SetExpected(expected)
	for _, s := range stmts {
		if err := e.Register(s); err != nil {
			return nil, err
		}
	}
	var offerErr error
	_, err := r.Scan(archive.Query{}, func(t collect.TraceTuple) bool {
		if err := e.Offer(t); err != nil {
			offerErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = offerErr
	}
	return e.Alerts(), err
}
