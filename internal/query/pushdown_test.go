package query

import (
	"reflect"
	"strings"
	"testing"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
)

// TestPushdownConservative is the honesty property: for every select
// statement in the corpus, scanning with the extracted pushdown must
// yield exactly the tuples (or aggregate results) of a full scan —
// the pushdown may only skip data the evaluator would reject anyway.
// Runs on both archive formats with small segments so the header index
// and the columnar block dictionaries both get a chance to skip.
func TestPushdownConservative(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format int
	}{
		{"row", archive.FormatRow},
		{"columnar", archive.FormatColumnar},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := writeFixtureArchive(t, t.TempDir(), tc.format, 600)
			for _, src := range readCorpus(t) {
				if strings.HasPrefix(src, "!") {
					continue
				}
				stmt, err := Parse(src)
				if err != nil {
					t.Fatalf("parse %q: %v", src, err)
				}
				if stmt.Alert {
					continue
				}
				if stmt.Star {
					collect := func(q archive.Query) []uint32 {
						var seqs []uint32
						_, err := ScanQuery(r, stmt, q, func(tu collect.TraceTuple) bool {
							seqs = append(seqs, tu.Seq)
							return true
						})
						if err != nil {
							t.Fatalf("scan %q: %v", src, err)
						}
						return seqs
					}
					pushed := collect(stmt.Pushdown())
					full := collect(archive.Query{})
					if !reflect.DeepEqual(pushed, full) {
						t.Errorf("%q: pushdown seqs %v != full scan %v", src, pushed, full)
					}
					continue
				}
				pushed, _, err := RunQuery(r, stmt, stmt.Pushdown())
				if err != nil {
					t.Fatalf("run %q: %v", src, err)
				}
				full, _, err := RunQuery(r, stmt, archive.Query{})
				if err != nil {
					t.Fatalf("full run %q: %v", src, err)
				}
				if !reflect.DeepEqual(pushed, full) {
					t.Errorf("%q: pushdown result %+v != full scan %+v", src, pushed, full)
				}
			}
		})
	}
}

// TestPushdownSkipsSegments: a selective stamp predicate must actually
// skip segments via the header index — the mechanism behind the ≥3×
// speedup the query benchmark pins down.
func TestPushdownSkipsSegments(t *testing.T) {
	r := writeFixtureArchive(t, t.TempDir(), archive.FormatColumnar, 600)
	stmt := mustParse(t, "select * where start >= 25us")
	stats, err := Scan(r, stmt, func(collect.TraceTuple) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsSkipped == 0 {
		t.Fatalf("no segments skipped: %+v", stats)
	}
	if stats.TuplesScanned >= 60 {
		t.Fatalf("pushdown read the whole archive: %+v", stats)
	}
}

// TestPushdownShapes pins the extraction rules on statements that do
// not go through the corpus fixture.
func TestPushdownShapes(t *testing.T) {
	cases := []struct {
		src  string
		want archive.Query
	}{
		// Disjunction of ecids unions; conjunction intersects.
		{"select * where (ecid == 1 or ecid == 2) and ecid in (2, 3)",
			archive.Query{ECIDs: []uint32{2}}},
		// ret/seq/latency/!= cannot be pushed down.
		{"select * where ret < 0", archive.Query{}},
		{"select * where ecid != 1", archive.Query{}},
		// An or with one unconstrained arm degrades to the universe.
		{"select * where ecid == 1 or ret < 0", archive.Query{}},
		// Strict bounds tighten by one; end <= caps MaxStamp.
		{"select * where start > 10us and end <= 30us",
			archive.Query{MinStamp: 10001, MaxStamp: 30000}},
		// not(...) is never pushed down, even over pushable leaves.
		{"select * where not (ecid == 1)", archive.Query{}},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		got := stmt.Pushdown()
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: pushdown %+v, want %+v", tc.src, got, tc.want)
		}
	}
}
