package query

import (
	"fmt"
	"time"

	"eventspace/internal/paths"
)

// opLiteral resolves an op-kind literal name.
func opLiteral(s string) (paths.OpKind, bool) {
	switch s {
	case "read":
		return paths.OpRead, true
	case "write":
		return paths.OpWrite, true
	case "mode":
		return paths.OpMode, true
	case "alert":
		return paths.OpAlert, true
	}
	return 0, false
}

// exprCtx is the evaluation context an expression is checked against:
// row context (per-tuple predicates: fields yes, aggregates no) or
// aggregate context (alert conditions: aggregates yes, bare fields no).
type exprCtx uint8

const (
	rowCtx exprCtx = iota
	aggCtx
)

// checkStmt validates the statement, applies defaults, and type-checks
// every expression in its proper context.
func checkStmt(s *Stmt) error {
	if s.By != FieldNone && s.By != FieldECID {
		return fmt.Errorf("can only group by ecid, not %s", s.By)
	}
	if s.Alert {
		if s.When == nil {
			return fmt.Errorf("alert has no condition")
		}
		if s.Limit > 0 {
			return fmt.Errorf("\"limit\" is a select clause")
		}
		if k, err := checkExpr(s.When, aggCtx); err != nil {
			return err
		} else if k != KBool {
			return fmt.Errorf("alert condition is %s, not bool", k)
		}
		// Defaults: the tick and the window fall back to each other,
		// and to 1ms when neither is given.
		if s.Every == 0 {
			s.Every = s.Window
		}
		if s.Every == 0 {
			s.Every = time.Millisecond
		}
		if s.Window == 0 {
			s.Window = s.Every
		}
		if s.For == 0 {
			s.For = 1
		}
		return nil
	}
	if s.Every > 0 {
		return fmt.Errorf("\"every\" is an alert clause")
	}
	if s.For > 0 {
		return fmt.Errorf("\"for ... rounds\" is an alert clause")
	}
	if s.Where != nil {
		if k, err := checkExpr(s.Where, rowCtx); err != nil {
			return err
		} else if k != KBool {
			return fmt.Errorf("where clause is %s, not bool", k)
		}
	}
	if s.Star {
		if s.By != FieldNone {
			return fmt.Errorf("select * cannot group by %s", s.By)
		}
		if s.Window > 0 {
			return fmt.Errorf("select * takes no window")
		}
		return nil
	}
	if len(s.Cols) == 0 {
		return fmt.Errorf("empty select list")
	}
	if s.Limit > 0 {
		return fmt.Errorf("\"limit\" applies to select * only")
	}
	for _, c := range s.Cols {
		if err := checkAgg(c); err != nil {
			return err
		}
		if c.Window > 0 {
			return fmt.Errorf("%s: private aggregate windows are alert-only", c)
		}
		if c.Kind == AggCoverage {
			return fmt.Errorf("coverage() is only available in alert conditions")
		}
	}
	return nil
}

// checkAgg validates an aggregate call's argument arity and type.
func checkAgg(a *Agg) error {
	if !a.Kind.needsArg() {
		if a.Arg != FieldNone {
			return fmt.Errorf("%s() takes no field argument", a.Kind)
		}
		return nil
	}
	if a.Arg == FieldNone {
		return fmt.Errorf("%s() needs a field argument", a.Kind)
	}
	if a.Kind != AggDistinct && fieldKind(a.Arg) == KOp {
		return fmt.Errorf("%s(%s): op is not numeric (only distinct aggregates it)", a.Kind, a.Arg)
	}
	return nil
}

// checkExpr type-checks an expression tree in ctx and returns its kind.
func checkExpr(e Expr, ctx exprCtx) (Kind, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Val.K, nil
	case *FieldRef:
		if ctx == aggCtx {
			return KInvalid, fmt.Errorf("field %s outside an aggregate in an alert condition", n.F)
		}
		return fieldKind(n.F), nil
	case *Agg:
		if ctx == rowCtx {
			return KInvalid, fmt.Errorf("aggregate %s in a per-tuple predicate", n)
		}
		if err := checkAgg(n); err != nil {
			return KInvalid, err
		}
		return n.typ(), nil
	case *Not:
		k, err := checkExpr(n.X, ctx)
		if err != nil {
			return KInvalid, err
		}
		if k != KBool {
			return KInvalid, fmt.Errorf("not applied to %s", k)
		}
		return KBool, nil
	case *In:
		k, err := checkExpr(n.X, ctx)
		if err != nil {
			return KInvalid, err
		}
		if len(n.List) == 0 {
			return KInvalid, fmt.Errorf("empty set in membership test")
		}
		for _, v := range n.List {
			if k == KOp {
				if v.K != KOp {
					return KInvalid, fmt.Errorf("op compared with %s in set", v.K)
				}
			} else if !v.numeric() || !(Value{K: k}).numeric() {
				return KInvalid, fmt.Errorf("%s value in %s membership test", v.K, k)
			}
		}
		return KBool, nil
	case *Binary:
		xk, err := checkExpr(n.X, ctx)
		if err != nil {
			return KInvalid, err
		}
		yk, err := checkExpr(n.Y, ctx)
		if err != nil {
			return KInvalid, err
		}
		k, err := binaryKind(n.Op, xk, yk)
		if err != nil {
			return KInvalid, err
		}
		n.t = k
		return k, nil
	}
	return KInvalid, fmt.Errorf("unsupported expression")
}

// binaryKind types a binary operator application.
func binaryKind(op BinOp, x, y Kind) (Kind, error) {
	num := func(k Kind) bool { return k == KInt || k == KDur || k == KFloat }
	switch op {
	case OpAnd, OpOr:
		if x != KBool || y != KBool {
			return KInvalid, fmt.Errorf("%s applied to %s and %s", op, x, y)
		}
		return KBool, nil
	case OpEq, OpNe:
		if x == KOp && y == KOp {
			return KBool, nil
		}
		fallthrough
	case OpLt, OpLe, OpGt, OpGe:
		if num(x) && num(y) {
			return KBool, nil
		}
		return KInvalid, fmt.Errorf("cannot compare %s with %s using %s", x, y, op)
	case OpDiv:
		if num(x) && num(y) {
			return KFloat, nil
		}
		return KInvalid, fmt.Errorf("cannot divide %s by %s", x, y)
	default: // OpAdd, OpSub, OpMul
		if !num(x) || !num(y) {
			return KInvalid, fmt.Errorf("arithmetic %s on %s and %s", op, x, y)
		}
		if x == KFloat || y == KFloat {
			return KFloat, nil
		}
		if x == KDur || y == KDur {
			return KDur, nil
		}
		return KInt, nil
	}
}
