package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// tokKind classifies a lexical token.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokDur
	tokLParen
	tokRParen
	tokComma
	tokStar // '*' doubles as the select-list star and multiplication
	tokPlus
	tokMinus
	tokSlash
	tokEq // == (or a single = as a convenience)
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
)

// token is one lexeme with its decoded payload.
type token struct {
	kind tokKind
	pos  int    // byte offset in the source, for error messages
	text string // identifier spelling
	i    int64  // tokInt / tokDur value (durations in nanoseconds)
	f    float64
}

// lexer splits esql source into tokens. Identifiers and keywords are
// case-insensitive (lowered on read); numbers followed by a duration
// unit lex as durations via time.ParseDuration.
type lexer struct {
	src  string
	pos  int
	tok  token // current token
	peek *token
}

// lexError is a syntax error with its byte offset.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("at offset %d: %s", e.pos, e.msg) }

func newLexer(src string) *lexer { return &lexer{src: src} }

// next advances to the next token.
func (l *lexer) next() error {
	if l.peek != nil {
		l.tok, l.peek = *l.peek, nil
		return nil
	}
	t, err := l.scan()
	if err != nil {
		return err
	}
	l.tok = t
	return nil
}

// peekTok returns the token after the current one without consuming it.
func (l *lexer) peekTok() (token, error) {
	if l.peek == nil {
		t, err := l.scan()
		if err != nil {
			return token{}, err
		}
		l.peek = &t
	}
	return *l.peek, nil
}

// scan reads one token from the source.
func (l *lexer) scan() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, pos: start, text: strings.ToLower(l.src[start:l.pos])}, nil
	case isDigit(c) || c == '.':
		return l.scanNumber(start)
	}
	l.pos++
	switch c {
	case '(':
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		return token{kind: tokRParen, pos: start}, nil
	case ',':
		return token{kind: tokComma, pos: start}, nil
	case '*':
		return token{kind: tokStar, pos: start}, nil
	case '+':
		return token{kind: tokPlus, pos: start}, nil
	case '-':
		return token{kind: tokMinus, pos: start}, nil
	case '/':
		return token{kind: tokSlash, pos: start}, nil
	case '=':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokEq, pos: start}, nil
	case '!':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokNe, pos: start}, nil
		}
		return token{}, &lexError{start, "unexpected '!'"}
	case '<':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokLe, pos: start}, nil
		}
		return token{kind: tokLt, pos: start}, nil
	case '>':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokGe, pos: start}, nil
		}
		return token{kind: tokGt, pos: start}, nil
	}
	return token{}, &lexError{start, fmt.Sprintf("unexpected character %q", c)}
}

// scanNumber reads an integer, float, or duration literal. A number
// immediately followed by letters is a duration ("500us", "1m", "1.5s",
// "1m30s"); time.ParseDuration validates the unit spelling.
func (l *lexer) scanNumber(start int) (token, error) {
	sawDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !sawDot {
			sawDot = true
			l.pos++
			continue
		}
		break
	}
	if l.pos == start || (sawDot && l.pos == start+1) {
		return token{}, &lexError{start, "malformed number"}
	}
	// Letters right after the digits make it a duration literal, which
	// may itself chain more digit/letter groups (1m30s). Bytes outside
	// ASCII count as unit letters so the canonical "µs" spelling
	// time.Duration.String produces re-parses.
	if l.pos < len(l.src) && isUnit(l.src[l.pos]) {
		for l.pos < len(l.src) && (isUnit(l.src[l.pos]) || isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		d, err := time.ParseDuration(l.src[start:l.pos])
		if err != nil {
			return token{}, &lexError{start, fmt.Sprintf("malformed duration %q", l.src[start:l.pos])}
		}
		return token{kind: tokDur, pos: start, i: int64(d)}, nil
	}
	text := l.src[start:l.pos]
	if sawDot {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, &lexError{start, fmt.Sprintf("malformed number %q", text)}
		}
		return token{kind: tokFloat, pos: start, f: f}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, &lexError{start, fmt.Sprintf("malformed integer %q", text)}
	}
	return token{kind: tokInt, pos: start, i: i}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isUnit(c byte) bool  { return isAlpha(c) || c >= 0x80 }
