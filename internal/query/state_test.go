package query

import (
	"reflect"
	"testing"

	"eventspace/internal/archive"
)

// stateStmts is the statement mix used by the snapshot tests: an
// ungrouped edge trigger, a grouped trigger (per-group streak/fired
// maps), and a for-N-rounds streak so snapshots land mid-streak.
func stateStmts(t *testing.T) []*Stmt {
	t.Helper()
	return []*Stmt{
		mustParse(t, "alert when count() > 1 window 2us"),
		mustParse(t, "alert when errors() > 0 by ecid window 5us"),
		mustParse(t, "alert when count() > 0 window 1us for 3 rounds"),
	}
}

// TestEngineSplitEquivalence is the checkpoint contract for the query
// engine: snapshot mid-stream, restore into a fresh engine carrying the
// same statements, feed the suffix — the alert stream (including alerts
// already fired before the split and streaks resumed across it) matches
// a straight-through engine exactly.
func TestEngineSplitEquivalence(t *testing.T) {
	tuples := testTuples()
	for _, split := range []int{0, 1, 9, 25, 44, len(tuples)} {
		full := NewEngine(nullSink{})
		full.SetExpected(3)
		for _, s := range stateStmts(t) {
			if err := full.Register(s); err != nil {
				t.Fatal(err)
			}
		}
		for _, tu := range tuples {
			if err := full.Offer(tu); err != nil {
				t.Fatal(err)
			}
		}

		head := NewEngine(nullSink{})
		head.SetExpected(3)
		for _, s := range stateStmts(t) {
			if err := head.Register(s); err != nil {
				t.Fatal(err)
			}
		}
		for _, tu := range tuples[:split] {
			if err := head.Offer(tu); err != nil {
				t.Fatal(err)
			}
		}
		st := head.State()

		tail := NewEngine(nullSink{})
		for _, s := range stateStmts(t) {
			if err := tail.Register(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := tail.Restore(st); err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		for _, tu := range tuples[split:] {
			if err := tail.Offer(tu); err != nil {
				t.Fatal(err)
			}
		}

		if got, want := tail.Alerts(), full.Alerts(); !reflect.DeepEqual(got, want) {
			t.Fatalf("split %d: alerts %v, want %v", split, alertKeys(got), alertKeys(want))
		}
		if !reflect.DeepEqual(tail.State(), full.State()) {
			t.Fatalf("split %d: restored engine state diverged from straight-through", split)
		}
	}
	// Sanity: the corpus must actually fire something, or the test is
	// vacuous.
	e := NewEngine(nullSink{})
	e.SetExpected(3)
	for _, s := range stateStmts(t) {
		if err := e.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, tu := range testTuples() {
		if err := e.Offer(tu); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Alerts()) == 0 {
		t.Fatal("corpus fired no alerts; split test proves nothing")
	}
}

// TestEngineRestoreRejectsMismatch: a snapshot only applies to an
// engine carrying the identical statements in the identical order.
func TestEngineRestoreRejectsMismatch(t *testing.T) {
	e := NewEngine(nullSink{})
	if err := e.Register(mustParse(t, "alert when count() > 1 window 2us")); err != nil {
		t.Fatal(err)
	}
	st := e.State()

	other := NewEngine(nullSink{})
	if err := other.Register(mustParse(t, "alert when count() > 5 window 2us")); err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(st); err == nil {
		t.Fatal("mismatched statement accepted")
	}

	empty := NewEngine(nullSink{})
	if err := empty.Restore(st); err == nil {
		t.Fatal("statement-count mismatch accepted")
	}
}

// TestReplayFromMatchesFullReplay proves the recovery fast path on both
// archive formats: engine state checkpointed mid-archive plus a
// suffix-only scan from the matching cursor regenerates exactly the
// alert stream of a full-archive replay (and of the live run).
func TestReplayFromMatchesFullReplay(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format int
	}{
		{"row", archive.FormatRow},
		{"columnar", archive.FormatColumnar},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := archive.Create(archive.Options{
				Dir: dir, Format: tc.format, SegmentBytes: 600, BlockTuples: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			stmts := stateStmts(t)
			eng := NewEngine(w)
			eng.SetExpected(3)
			for _, s := range stmts {
				if err := eng.Register(s); err != nil {
					t.Fatal(err)
				}
			}
			tuples := testTuples()
			const split = 28
			if err := eng.AppendRaw(encodeBatch(tuples[:split])); err != nil {
				t.Fatal(err)
			}
			// Checkpoint instant: everything appended so far is durable,
			// the cursor covers it, and the engine snapshot is taken at
			// the same stream position.
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			cur := w.Position()
			st := eng.State()

			if err := eng.AppendRaw(encodeBatch(tuples[split:])); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			live := eng.Alerts()
			if len(live) == 0 {
				t.Fatal("no alerts fired during the live run")
			}

			r, err := archive.OpenReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			fullRegen, err := Replay(r, stmts, 3)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := ReplayFrom(r, cur, stmts, st)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fullRegen, live) {
				t.Errorf("full replay %v != live %v", alertKeys(fullRegen), alertKeys(live))
			}
			if !reflect.DeepEqual(fast, live) {
				t.Errorf("checkpointed replay %v != live %v", alertKeys(fast), alertKeys(live))
			}
		})
	}
}

// TestEngineStateCanonical: snapshots of behaviorally identical engines
// are bit-identical — zero streaks and unfired latches are compressed
// out, so a restored-then-resnapshotted state round-trips exactly.
func TestEngineStateCanonical(t *testing.T) {
	mk := func() *Engine {
		e := NewEngine(nullSink{})
		e.SetExpected(3)
		for _, s := range stateStmts(t) {
			if err := e.Register(s); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	e := mk()
	for _, tu := range testTuples() {
		if err := e.Offer(tu); err != nil {
			t.Fatal(err)
		}
	}
	st := e.State()
	re := mk()
	if err := re.Restore(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.State(), st) {
		t.Fatal("restore/resnapshot did not round-trip the canonical state")
	}
}
