package query

import (
	"testing"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// testTuples is the fixture stream the golden corpus and the pushdown
// property test run against: three collectors, mixed ops, a sprinkle of
// errors, stamps spread over 30µs so small segments give the pushdown
// something to skip.
func testTuples() []collect.TraceTuple {
	var out []collect.TraceTuple
	for i := 0; i < 60; i++ {
		op := paths.OpRead
		if i%2 == 1 {
			op = paths.OpWrite
		}
		var ret int16
		if i%10 == 9 {
			ret = -1
		}
		start := int64(i) * 500
		lat := int64(100 + (i%7)*50)
		out = append(out, collect.TraceTuple{
			ECID: uint32(1 + i%3), Op: op, Ret: ret, Seq: uint32(i),
			Start: start, End: start + lat,
		})
	}
	return out
}

// writeFixtureArchive writes the fixture stream into a fresh archive
// and opens a reader over it.
func writeFixtureArchive(t *testing.T, dir string, format int, segmentBytes int64) *archive.Reader {
	t.Helper()
	w, err := archive.Create(archive.Options{Dir: dir, Format: format, SegmentBytes: segmentBytes, BlockTuples: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range testTuples() {
		if err := w.Append([]collect.TraceTuple{tu}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
