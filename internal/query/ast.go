// Package query implements esql, the EventSpace trace query language:
// a lexer, recursive-descent parser, typed AST, and an evaluator over
// 28-byte trace tuples — both offline against a trace archive (with
// static pushdown of the predicate into the archive's header-index and
// columnar block-skip paths, see pushdown.go) and *continuously* over
// the live gather stream (engine.go), where standing `alert when ...`
// queries fire first-class OpAlert control tuples that are archived and
// replay byte-identically.
//
// The language, informally (DESIGN.md §14 has the full grammar):
//
//	select * where ecid in (1, 2) and op == read and latency > 500us limit 10
//	select count(), errors(), mean(latency) by ecid where start >= 2us window 1ms
//	alert when p99(latency) > 2 * median(latency, 1m) by ecid every 100us
//	alert when coverage() < 1.0 for 3 rounds every 1ms
//
// Fields: ecid, op, ret, seq, start, end, latency (= end - start).
// Aggregates: count, sum, mean, min, max, median, p50, p90, p99,
// errors (count of tuples with ret < 0), distinct (distinct values),
// coverage (distinct ecids seen / expected ecids). An aggregate's
// optional second argument is a private window; such aggregates are
// evaluated ungrouped (over all groups), which is what makes
// "per-collector p99 versus the global 1-minute median" expressible.
package query

import (
	"fmt"
	"strings"
	"time"

	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// Field names a trace-tuple column.
type Field uint8

// Trace-tuple fields.
const (
	FieldNone Field = iota
	FieldECID
	FieldOp
	FieldRet
	FieldSeq
	FieldStart
	FieldEnd
	FieldLatency
)

// String returns the esql spelling of the field.
func (f Field) String() string {
	switch f {
	case FieldECID:
		return "ecid"
	case FieldOp:
		return "op"
	case FieldRet:
		return "ret"
	case FieldSeq:
		return "seq"
	case FieldStart:
		return "start"
	case FieldEnd:
		return "end"
	case FieldLatency:
		return "latency"
	default:
		return fmt.Sprintf("field(%d)", uint8(f))
	}
}

// fieldByName resolves an identifier to a field.
func fieldByName(s string) (Field, bool) {
	switch s {
	case "ecid":
		return FieldECID, true
	case "op":
		return FieldOp, true
	case "ret":
		return FieldRet, true
	case "seq":
		return FieldSeq, true
	case "start":
		return FieldStart, true
	case "end":
		return FieldEnd, true
	case "latency":
		return FieldLatency, true
	}
	return FieldNone, false
}

// Kind is an esql value type.
type Kind uint8

// Value kinds. Int covers ecid/ret/seq and integer literals; Dur covers
// start/end/latency (nanoseconds of modelled time) and duration
// literals; Float covers fractional literals and mean/coverage results;
// Op is an operation-kind literal (read/write/mode/alert); Bool is the
// result of comparisons and boolean combinators.
const (
	KInvalid Kind = iota
	KInt
	KDur
	KFloat
	KOp
	KBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KDur:
		return "duration"
	case KFloat:
		return "float"
	case KOp:
		return "op"
	case KBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is an evaluated esql value. Int, Dur, Op and Bool live in I
// (Bool as 0/1); Float lives in F.
type Value struct {
	K Kind
	I int64
	F float64
}

// numeric reports whether the value participates in arithmetic and
// ordered comparisons.
func (v Value) numeric() bool { return v.K == KInt || v.K == KDur || v.K == KFloat }

// asFloat widens a numeric value to float64.
func (v Value) asFloat() float64 {
	if v.K == KFloat {
		return v.F
	}
	return float64(v.I)
}

// Bool unpacks a KBool value.
func (v Value) Bool() bool { return v.K == KBool && v.I != 0 }

// String renders the value in its esql literal form (durations use the
// Go duration syntax esql shares).
func (v Value) String() string {
	switch v.K {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KDur:
		return time.Duration(v.I).String()
	case KFloat:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v.F), "0"), ".")
	case KOp:
		return paths.OpKind(v.I).String()
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "invalid"
	}
}

// AggKind names an aggregate function.
type AggKind uint8

// Aggregate functions.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggMean
	AggMin
	AggMax
	AggMedian
	AggP50
	AggP90
	AggP99
	AggErrors
	AggDistinct
	AggCoverage
)

// String returns the esql spelling of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMean:
		return "mean"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggMedian:
		return "median"
	case AggP50:
		return "p50"
	case AggP90:
		return "p90"
	case AggP99:
		return "p99"
	case AggErrors:
		return "errors"
	case AggDistinct:
		return "distinct"
	case AggCoverage:
		return "coverage"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// aggByName resolves an identifier to an aggregate kind.
func aggByName(s string) (AggKind, bool) {
	switch s {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "mean":
		return AggMean, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	case "median":
		return AggMedian, true
	case "p50":
		return AggP50, true
	case "p90":
		return AggP90, true
	case "p99":
		return AggP99, true
	case "errors":
		return AggErrors, true
	case "distinct":
		return AggDistinct, true
	case "coverage":
		return AggCoverage, true
	}
	return AggNone, false
}

// needsArg reports whether the aggregate takes a field argument.
// count/errors/coverage are nullary.
func (a AggKind) needsArg() bool {
	switch a {
	case AggCount, AggErrors, AggCoverage:
		return false
	}
	return true
}

// Expr is an esql expression node. Every node renders back to canonical
// esql via String — Parse(expr.String()) yields an equal tree, which
// the golden corpus and the parser fuzzer both pin down.
type Expr interface {
	String() string
	// typ is the expression's checked result kind (set by the checker).
	typ() Kind
}

// Lit is a literal value.
type Lit struct {
	Val Value
}

func (l *Lit) String() string { return l.Val.String() }
func (l *Lit) typ() Kind      { return l.Val.K }

// FieldRef reads a tuple field. Legal in row context (where clauses and
// aggregate arguments), illegal at the top level of an alert condition.
type FieldRef struct {
	F Field
}

func (f *FieldRef) String() string { return f.F.String() }

func (f *FieldRef) typ() Kind { return fieldKind(f.F) }

// fieldKind maps a field to its value kind.
func fieldKind(f Field) Kind {
	switch f {
	case FieldECID, FieldRet, FieldSeq:
		return KInt
	case FieldOp:
		return KOp
	case FieldStart, FieldEnd, FieldLatency:
		return KDur
	default:
		return KInvalid
	}
}

// Agg is an aggregate call over the rows in scope (a group and window
// for grouped queries). A non-zero Window is the aggregate's private
// window; such calls are evaluated over *all* groups, so a grouped
// condition can compare a per-group statistic to a global baseline.
type Agg struct {
	Kind   AggKind
	Arg    Field         // FieldNone for nullary aggregates
	Window time.Duration // 0: the query window
}

func (a *Agg) String() string {
	var b strings.Builder
	b.WriteString(a.Kind.String())
	b.WriteByte('(')
	if a.Arg != FieldNone {
		b.WriteString(a.Arg.String())
	}
	if a.Window > 0 {
		if a.Arg != FieldNone {
			b.WriteString(", ")
		}
		b.WriteString(a.Window.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (a *Agg) typ() Kind {
	switch a.Kind {
	case AggCount, AggErrors, AggDistinct:
		return KInt
	case AggCoverage:
		return KFloat
	case AggMean:
		// Mean of a duration field truncates to whole nanoseconds (the
		// same integer division the archive's summaries use, so the
		// esquery summarize sugar is byte-identical); means of integer
		// fields stay fractional.
		if fieldKind(a.Arg) == KDur {
			return KDur
		}
		return KFloat
	default: // sum/min/max/median/p* take their argument's kind
		return fieldKind(a.Arg)
	}
}

// Not negates a boolean expression.
type Not struct {
	X Expr
}

func (n *Not) String() string { return "not " + maybeParen(n.X) }
func (n *Not) typ() Kind      { return KBool }

// BinOp is a binary operator token.
type BinOp uint8

// Binary operators, in increasing precedence groups: or < and <
// comparisons < additive < multiplicative.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String returns the operator's esql spelling.
func (o BinOp) String() string {
	switch o {
	case OpOr:
		return "or"
	case OpAnd:
		return "and"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("binop(%d)", uint8(o))
	}
}

// prec returns the operator's precedence (higher binds tighter).
func (o BinOp) prec() int {
	switch o {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	default: // OpMul, OpDiv
		return 5
	}
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	X, Y Expr
	t    Kind
}

func (b *Binary) String() string {
	x, y := b.X.String(), b.Y.String()
	if sub, ok := b.X.(*Binary); ok && sub.Op.prec() < b.Op.prec() {
		x = "(" + x + ")"
	}
	if sub, ok := b.Y.(*Binary); ok && sub.Op.prec() <= b.Op.prec() {
		y = "(" + y + ")"
	}
	if _, ok := b.Y.(*Not); ok {
		y = "(" + y + ")"
	}
	return x + " " + b.Op.String() + " " + y
}

func (b *Binary) typ() Kind { return b.t }

// In is set membership: X in (v1, v2, ...) / X not in (...).
type In struct {
	X    Expr
	Neg  bool
	List []Value
}

func (in *In) String() string {
	var b strings.Builder
	b.WriteString(maybeParen(in.X))
	if in.Neg {
		b.WriteString(" not")
	}
	b.WriteString(" in (")
	for i, v := range in.List {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (in *In) typ() Kind { return KBool }

// maybeParen wraps composite operands so the canonical form re-parses
// unambiguously.
func maybeParen(e Expr) string {
	switch e.(type) {
	case *Binary, *In, *Not:
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Stmt is a parsed, checked esql statement: either a select query
// (offline, over an archive) or an alert query (a standing continuous
// query for the live engine, also runnable offline as a replay).
type Stmt struct {
	// Alert distinguishes `alert when ...` from `select ...`.
	Alert bool
	// Star is `select *`: stream matching tuples instead of aggregating.
	Star bool
	// Cols are the select list's aggregate calls (empty when Star).
	Cols []*Agg
	// Where filters rows (select queries; row context).
	Where Expr
	// When is the alert condition (aggregate context).
	When Expr
	// By is the grouping field (FieldNone: ungrouped). Only ecid may be
	// grouped on — it is the one identity column of the tuple format.
	By Field
	// Window is the aggregation window over tuple Start stamps. For
	// select queries 0 means "one bucket spanning everything"; for
	// alerts the checker defaults it to Every.
	Window time.Duration
	// Every is the alert evaluation tick: the condition is re-evaluated
	// whenever the stream's Start-stamp watermark crosses a multiple of
	// it. The checker defaults it to Window, and to 1ms if both are
	// unset.
	Every time.Duration
	// For is the consecutive-tick count an alert condition must hold
	// before firing (default 1). The alert fires once on the For-th
	// tick and re-arms when the condition next turns false.
	For int
	// Limit stops a select-* stream after N rows (0: unbounded).
	Limit int
}

// String renders the statement in canonical esql. Parse(s.String())
// yields an equal statement, and the FNV-64 hash of this rendering is
// the query's identity in alert tuples.
func (s *Stmt) String() string {
	var b strings.Builder
	if s.Alert {
		b.WriteString("alert when ")
		b.WriteString(s.When.String())
	} else {
		b.WriteString("select ")
		if s.Star {
			b.WriteByte('*')
		} else {
			for i, c := range s.Cols {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(c.String())
			}
		}
		if s.Where != nil {
			b.WriteString(" where ")
			b.WriteString(s.Where.String())
		}
	}
	if s.By != FieldNone {
		b.WriteString(" by ")
		b.WriteString(s.By.String())
	}
	if s.Window > 0 {
		b.WriteString(" window ")
		b.WriteString(s.Window.String())
	}
	if s.Alert && s.Every > 0 && s.Every != s.Window {
		b.WriteString(" every ")
		b.WriteString(s.Every.String())
	}
	if s.For > 1 {
		fmt.Fprintf(&b, " for %d rounds", s.For)
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " limit %d", s.Limit)
	}
	return b.String()
}

// Hash returns the FNV-64 hash of the statement's canonical rendering —
// the query identity recorded in alert control tuples (the same hash
// mode tuples use for scope names).
func (s *Stmt) Hash() uint64 { return collect.HashName(s.String()) }
