package query

import (
	"fmt"
	"sort"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
)

// fieldVal extracts a field from a tuple as its raw int64.
func fieldVal(t collect.TraceTuple, f Field) int64 {
	switch f {
	case FieldECID:
		return int64(t.ECID)
	case FieldOp:
		return int64(t.Op)
	case FieldRet:
		return int64(t.Ret)
	case FieldSeq:
		return int64(t.Seq)
	case FieldStart:
		return t.Start
	case FieldEnd:
		return t.End
	case FieldLatency:
		return t.End - t.Start
	default:
		return 0
	}
}

// evalRow evaluates a row-context expression against one tuple. The
// expression must have passed checkExpr(rowCtx).
func evalRow(e Expr, t collect.TraceTuple) Value {
	switch n := e.(type) {
	case *Lit:
		return n.Val
	case *FieldRef:
		return Value{K: fieldKind(n.F), I: fieldVal(t, n.F)}
	case *Not:
		v := evalRow(n.X, t)
		return boolValue(!v.Bool())
	case *In:
		return evalIn(n, evalRow(n.X, t))
	case *Binary:
		return evalBinary(n, evalRow(n.X, t), evalRow(n.Y, t))
	}
	return Value{}
}

// boolValue packs a bool.
func boolValue(b bool) Value {
	if b {
		return Value{K: KBool, I: 1}
	}
	return Value{K: KBool}
}

// evalIn tests set membership of an evaluated operand.
func evalIn(n *In, x Value) Value {
	hit := false
	for _, v := range n.List {
		if x.K == KOp || v.K == KOp {
			if x.K == v.K && x.I == v.I {
				hit = true
				break
			}
			continue
		}
		if x.K == KFloat || v.K == KFloat {
			if x.asFloat() == v.asFloat() {
				hit = true
				break
			}
		} else if x.I == v.I {
			hit = true
			break
		}
	}
	return boolValue(hit != n.Neg)
}

// evalBinary applies a checked binary operator to evaluated operands.
func evalBinary(n *Binary, x, y Value) Value {
	switch n.Op {
	case OpAnd:
		return boolValue(x.Bool() && y.Bool())
	case OpOr:
		return boolValue(x.Bool() || y.Bool())
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return boolValue(compare(n.Op, x, y))
	case OpDiv:
		d := y.asFloat()
		if d == 0 {
			return Value{K: KFloat}
		}
		return Value{K: KFloat, F: x.asFloat() / d}
	default: // OpAdd, OpSub, OpMul
		if n.t == KFloat {
			var f float64
			switch n.Op {
			case OpAdd:
				f = x.asFloat() + y.asFloat()
			case OpSub:
				f = x.asFloat() - y.asFloat()
			default:
				f = x.asFloat() * y.asFloat()
			}
			return Value{K: KFloat, F: f}
		}
		var i int64
		switch n.Op {
		case OpAdd:
			i = x.I + y.I
		case OpSub:
			i = x.I - y.I
		default:
			i = x.I * y.I
		}
		return Value{K: n.t, I: i}
	}
}

// compare applies an ordered comparison. Mixed int/duration compare on
// raw nanoseconds; anything involving a float compares as float64.
func compare(op BinOp, x, y Value) bool {
	if x.K == KOp || y.K == KOp {
		switch op {
		case OpEq:
			return x.I == y.I
		case OpNe:
			return x.I != y.I
		}
		return false
	}
	if x.K == KFloat || y.K == KFloat {
		a, b := x.asFloat(), y.asFloat()
		switch op {
		case OpEq:
			return a == b
		case OpNe:
			return a != b
		case OpLt:
			return a < b
		case OpLe:
			return a <= b
		case OpGt:
			return a > b
		default:
			return a >= b
		}
	}
	a, b := x.I, y.I
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	default:
		return a >= b
	}
}

// computeAgg evaluates one aggregate over a tuple set. expected is the
// coverage() denominator (the collector roster size). Empty sets yield
// zero values — count()/errors() 0, everything else the zero of its
// kind — which is the honest answer for "nothing in the window".
func computeAgg(a *Agg, tuples []collect.TraceTuple, expected int) Value {
	switch a.Kind {
	case AggCount:
		return Value{K: KInt, I: int64(len(tuples))}
	case AggErrors:
		var n int64
		for _, t := range tuples {
			if t.Ret < 0 {
				n++
			}
		}
		return Value{K: KInt, I: n}
	case AggCoverage:
		if expected <= 0 {
			return Value{K: KFloat}
		}
		seen := make(map[uint32]struct{}, expected)
		for _, t := range tuples {
			seen[t.ECID] = struct{}{}
		}
		return Value{K: KFloat, F: float64(len(seen)) / float64(expected)}
	case AggDistinct:
		seen := make(map[int64]struct{}, 16)
		for _, t := range tuples {
			seen[fieldVal(t, a.Arg)] = struct{}{}
		}
		return Value{K: KInt, I: int64(len(seen))}
	case AggSum:
		var s int64
		for _, t := range tuples {
			s += fieldVal(t, a.Arg)
		}
		return Value{K: fieldKind(a.Arg), I: s}
	case AggMean:
		if len(tuples) == 0 {
			return Value{K: a.typ()}
		}
		var s int64
		for _, t := range tuples {
			s += fieldVal(t, a.Arg)
		}
		if a.typ() == KDur {
			return Value{K: KDur, I: s / int64(len(tuples))}
		}
		return Value{K: KFloat, F: float64(s) / float64(len(tuples))}
	case AggMin, AggMax:
		if len(tuples) == 0 {
			return Value{K: fieldKind(a.Arg)}
		}
		best := fieldVal(tuples[0], a.Arg)
		for _, t := range tuples[1:] {
			v := fieldVal(t, a.Arg)
			if (a.Kind == AggMin && v < best) || (a.Kind == AggMax && v > best) {
				best = v
			}
		}
		return Value{K: fieldKind(a.Arg), I: best}
	case AggMedian, AggP50, AggP90, AggP99:
		if len(tuples) == 0 {
			return Value{K: fieldKind(a.Arg)}
		}
		vals := make([]int64, len(tuples))
		for i, t := range tuples {
			vals[i] = fieldVal(t, a.Arg)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		q := 0.50
		switch a.Kind {
		case AggP90:
			q = 0.90
		case AggP99:
			q = 0.99
		}
		// Nearest-rank percentile: the smallest value with at least
		// q*n values at or below it.
		idx := int(q*float64(len(vals))+0.9999999) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		return Value{K: fieldKind(a.Arg), I: vals[idx]}
	}
	return Value{}
}

// aggEnv is the tuple scope an alert condition evaluates against at one
// tick: the group's query-window tuples, the full (all-group) retained
// buffer for private-window aggregates, the tick stamp, and the
// coverage roster size.
type aggEnv struct {
	group     []collect.TraceTuple // this group's tuples in the query window
	windowAll []collect.TraceTuple // all groups' tuples in the query window
	all       []collect.TraceTuple // full retained buffer (private windows)
	tick      hrtime.Stamp
	expected  int

	// scratch is reused across aggregate calls for private-window
	// filtering, so a tick evaluation does not allocate per aggregate.
	scratch []collect.TraceTuple
}

// evalWhen evaluates an aggregate-context expression. Aggregates with a
// private window select tuples from the full retained buffer (all
// groups) within (tick-window, tick]; coverage() always counts across
// all groups, bounded by the query window unless it carries its own.
func evalWhen(e Expr, env *aggEnv) Value {
	switch n := e.(type) {
	case *Lit:
		return n.Val
	case *Agg:
		tuples := env.group
		if n.Kind == AggCoverage {
			tuples = env.windowAll
		}
		if n.Window > 0 {
			env.scratch = env.scratch[:0]
			lo := env.tick - int64(n.Window)
			for _, t := range env.all {
				if t.Start > lo && t.Start <= env.tick {
					env.scratch = append(env.scratch, t)
				}
			}
			tuples = env.scratch
		}
		return computeAgg(n, tuples, env.expected)
	case *Not:
		return boolValue(!evalWhen(n.X, env).Bool())
	case *In:
		return evalIn(n, evalWhen(n.X, env))
	case *Binary:
		return evalBinary(n, evalWhen(n.X, env), evalWhen(n.Y, env))
	}
	return Value{}
}

// Row is one result row of an aggregate select: its group key (ecid; 0
// when ungrouped), its window bucket (tuple-Start stamp of the bucket's
// left edge; 0 when unwindowed), and one value per select column.
type Row struct {
	Group  uint32
	Bucket hrtime.Stamp
	Vals   []Value
}

// Result is an aggregate select's output table, rows sorted by group
// then bucket — a pure function of the archive's tuples, so re-running
// the query renders byte-identically.
type Result struct {
	Cols     []string // canonical aggregate spellings
	Grouped  bool
	Windowed bool
	Rows     []Row
}

// Scan streams the tuples a select-* statement matches, in archive
// order, honoring the statement's Limit. The statement's predicate is
// compiled into a conservative archive.Query (see Pushdown) so the scan
// rides the header-index and columnar block-skip paths; the returned
// stats report the exact predicate's match count.
func Scan(r *archive.Reader, s *Stmt, fn func(collect.TraceTuple) bool) (archive.ScanStats, error) {
	return ScanQuery(r, s, s.Pushdown(), fn)
}

// ScanQuery is Scan with an explicit pushdown query — the benchmark
// harness passes a zero archive.Query to measure the full-scan
// baseline. aq must be conservative for s (Pushdown's contract).
func ScanQuery(r *archive.Reader, s *Stmt, aq archive.Query, fn func(collect.TraceTuple) bool) (archive.ScanStats, error) {
	if s.Alert || !s.Star {
		return archive.ScanStats{}, fmt.Errorf("query: Scan wants a select * statement")
	}
	var matched uint64
	stats, err := r.Scan(aq, func(t collect.TraceTuple) bool {
		if s.Where != nil && !evalRow(s.Where, t).Bool() {
			return true
		}
		matched++
		if !fn(t) {
			return false
		}
		return s.Limit == 0 || matched < uint64(s.Limit)
	})
	stats.TuplesMatched = matched
	return stats, err
}

// Run evaluates an aggregate select statement over an archive: matching
// tuples are grouped by the statement's By field and Window buckets,
// and every select column is computed per cell.
func Run(r *archive.Reader, s *Stmt) (*Result, archive.ScanStats, error) {
	return RunQuery(r, s, s.Pushdown())
}

// RunQuery is Run with an explicit pushdown query (see ScanQuery).
func RunQuery(r *archive.Reader, s *Stmt, aq archive.Query) (*Result, archive.ScanStats, error) {
	if s.Alert {
		return nil, archive.ScanStats{}, fmt.Errorf("query: Run wants a select statement (replay alerts with an Engine)")
	}
	if s.Star {
		return nil, archive.ScanStats{}, fmt.Errorf("query: Run wants an aggregate select (stream select * with Scan)")
	}
	type cellKey struct {
		group  uint32
		bucket hrtime.Stamp
	}
	cells := make(map[cellKey][]collect.TraceTuple)
	var matched uint64
	stats, err := r.Scan(aq, func(t collect.TraceTuple) bool {
		if s.Where != nil && !evalRow(s.Where, t).Bool() {
			return true
		}
		matched++
		key := cellKey{}
		if s.By == FieldECID {
			key.group = t.ECID
		}
		if s.Window > 0 {
			key.bucket = t.Start - t.Start%int64(s.Window)
		}
		cells[key] = append(cells[key], t)
		return true
	})
	stats.TuplesMatched = matched
	if err != nil {
		return nil, stats, err
	}
	res := &Result{Grouped: s.By != FieldNone, Windowed: s.Window > 0}
	for _, c := range s.Cols {
		res.Cols = append(res.Cols, c.String())
	}
	keys := make([]cellKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].group != keys[j].group {
			return keys[i].group < keys[j].group
		}
		return keys[i].bucket < keys[j].bucket
	})
	for _, k := range keys {
		row := Row{Group: k.group, Bucket: k.bucket}
		for _, c := range s.Cols {
			row.Vals = append(row.Vals, computeAgg(c, cells[k], 0))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, stats, nil
}
